// Differential and statistical oracles: run every independent
// implementation of the same quantity on one model and demand
// agreement.
//
// The repo computes steady-state probabilities four ways (GTH, LU,
// power iteration, Gauss-Seidel), transient distributions two ways
// (uniformization, dense matrix exponential), and availability a
// third way again by Monte Carlo trajectory simulation.  A shared
// bias in one path against hand-derived unit-test constants can pass
// silently; pairwise agreement across *independent* paths cannot.
// Analytic-vs-simulation checks are CI-aware: the analytic value must
// fall inside a widened confidence interval of the estimator, never
// inside a fixed epsilon.
#pragma once

#include <string>
#include <vector>

#include "ctmc/ctmc.h"
#include "linalg/matrix.h"
#include "sim/ctmc_simulator.h"

namespace rascal::check {

/// Outcome of an oracle run: every executed comparison is counted and
/// every violation is recorded as a human-readable line.
struct OracleReport {
  std::size_t checks = 0;
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
  /// Appends another report's counts and failures (with a context
  /// prefix) to this one.
  void absorb(const OracleReport& other, const std::string& context);
  /// Records one comparison: |lhs - rhs| <= tolerance.
  void expect_close(const std::string& what, double lhs, double rhs,
                    double tolerance);
};

struct OracleOptions {
  // Absolute tolerance on per-state probabilities and availability
  // when comparing two deterministic solvers.
  double steady_tolerance = 1e-8;
  // Absolute tolerance on transient probabilities (uniformization
  // precision is 1e-12; Pade expm is good to ~1e-12 for scaled norms).
  double transient_tolerance = 1e-8;
  // Analytic-vs-Monte-Carlo checks pass when the analytic value lies
  // within ci_factor times the estimator's 95% CI half-width (plus a
  // small absolute floor for zero-variance corner cases).
  double ci_factor = 4.0;
  double ci_absolute_floor = 1e-9;
  // Include the iterative methods (power, Gauss-Seidel).  Direct-only
  // mode is for stiff chains where power iteration's uniformized
  // spectral gap would need millions of sweeps.
  bool include_iterative = true;
};

/// Runs every applicable steady-state solver on `chain` and checks
/// all pairs against each other (per-state probabilities, availability
/// at threshold 0.5) plus each solution's balance residual ||pi Q||.
[[nodiscard]] OracleReport check_steady_state_consensus(
    const ctmc::Ctmc& chain, const OracleOptions& options = {});

/// Checks every solver against an externally known stationary vector
/// (closed-form birth-death solutions from random_model.h).
[[nodiscard]] OracleReport check_steady_state_against(
    const ctmc::Ctmc& chain, const linalg::Vector& expected,
    const OracleOptions& options = {});

/// Compares uniformization with the dense matrix exponential at time
/// `t`, starting from state 0.
[[nodiscard]] OracleReport check_transient_consensus(
    const ctmc::Ctmc& chain, double t, const OracleOptions& options = {});

/// CI-aware analytic-vs-simulation check: GTH availability must lie
/// inside the simulator's widened confidence interval.
[[nodiscard]] OracleReport check_simulation_consensus(
    const ctmc::Ctmc& chain, const sim::CtmcSimOptions& sim_options,
    const OracleOptions& options = {});

/// Bit-identity gate for the allocation-free solve hot path: solves
/// through a reused (and deliberately dirty) SolveWorkspace, repeated
/// SolveCache hits, and batched multi-RHS interval rewards must all
/// reproduce the fresh-allocation path exactly — tolerance zero —
/// across every steady-state method in `options` and both transient
/// evaluators (distribution and interval reward) at horizon `t`.
[[nodiscard]] OracleReport check_workspace_consensus(
    const ctmc::Ctmc& chain, double t, const OracleOptions& options = {});

/// Differential gate for the sparse Krylov engine: GMRES and BiCGStab
/// under every preconditioner (none, Jacobi, ILU(0)) must agree with
/// the dense GTH reference per-state and on availability, each
/// solution's balance residual must meet tolerance, a chain GTH
/// refuses must be refused by every Krylov variant too, and a solve
/// through a reused (dirty) SolveWorkspace must reproduce the fresh
/// Krylov solve bit-for-bit (tolerance zero).
[[nodiscard]] OracleReport check_krylov_consensus(
    const ctmc::Ctmc& chain, const OracleOptions& options = {});

/// Bit-identity gate for the shared concurrent solve cache: for each
/// steady-state method, the distribution served by a worker-local
/// SolveCache on a cold miss, on a local hit, and on a shared-tier
/// hit from a different worker's cache must all reproduce the direct
/// solve_steady_state() result exactly — tolerance zero.  Also checks
/// that the shared tier actually recorded the publish and the
/// cross-cache hit (a silently disabled cache would pass bit-identity
/// trivially).
[[nodiscard]] OracleReport check_shared_cache_consensus(
    const ctmc::Ctmc& chain, const OracleOptions& options = {});

/// Bit-identity gate for the serve supervision layer (retry +
/// fallback ladder): a supervised solve that recovers from injected
/// transient faults must reproduce the direct solve_steady_state()
/// result exactly — tolerance zero — for every injected-fault count
/// the retry policy can absorb, while consuming exactly faults+1
/// attempts, staying on rung 0, and carrying no fallback annotation.
/// Exhausting the policy must throw a TransientError (never return a
/// partial result), and the fallback ladder itself must be a pure
/// function of its inputs (same rungs on every call, rung 0 the
/// requested configuration, dense descents ending on exact GTH,
/// sparse descents never densifying).
[[nodiscard]] OracleReport check_retry_consensus(
    const ctmc::Ctmc& chain, const OracleOptions& options = {});

}  // namespace rascal::check

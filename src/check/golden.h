// Golden-file regression records: named scalar metrics, each locked
// with its own absolute/relative tolerance, serialized as a flat JSON
// object.  The reproduced paper numbers live in tests/golden/*.json;
// `rascal_cli golden` verifies them and `rascal_cli --update-golden`
// regenerates them deterministically (fixed seeds, fixed sample
// counts).
//
// A comparison passes when
//   |current - value| <= abs_tol + rel_tol * |value|.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rascal::check {

struct GoldenEntry {
  double value = 0.0;
  double abs_tol = 0.0;
  double rel_tol = 1e-9;
};

/// Metric name -> locked value with tolerance.  std::map keeps the
/// serialization deterministic.
using GoldenRecord = std::map<std::string, GoldenEntry>;

/// Serializes with full double precision and stable key order, so
/// repeated --update-golden runs are byte-identical.
[[nodiscard]] std::string to_json(const GoldenRecord& record);

/// Parses the subset of JSON emitted by to_json.  Throws
/// std::runtime_error with a position-annotated message on malformed
/// input, unknown fields, or duplicate keys.
[[nodiscard]] GoldenRecord parse_json(const std::string& text);

/// Reads/writes a record at `path`.  load throws std::runtime_error
/// when the file is missing (the error suggests --update-golden).
[[nodiscard]] GoldenRecord load_golden(const std::string& path);
void write_golden(const std::string& path, const GoldenRecord& record);

/// Compares freshly computed metrics against a golden record.  Every
/// metric must exist on both sides; mismatches, missing metrics, and
/// out-of-tolerance values come back as human-readable lines (empty =
/// pass).
[[nodiscard]] std::vector<std::string> compare_golden(
    const GoldenRecord& golden, const GoldenRecord& current);

}  // namespace rascal::check

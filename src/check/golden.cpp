#include "check/golden.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rascal::check {

namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

// Minimal recursive-descent reader for the flat two-level object
// emitted by to_json.  Positions are byte offsets for error messages.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  GoldenRecord parse() {
    GoldenRecord record;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      finish();
      return record;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      if (!record.emplace(key, parse_entry()).second) {
        fail("duplicate metric '" + key + "'");
      }
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      finish();
      return record;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("golden JSON, offset " + std::to_string(pos_) +
                             ": " + message);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_whitespace();
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') fail("escape sequences are not supported");
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_whitespace();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    if (!std::isfinite(value)) fail("non-finite number");
    return value;
  }

  GoldenEntry parse_entry() {
    GoldenEntry entry;
    bool has_value = false;
    expect('{');
    while (true) {
      const std::string field = parse_string();
      expect(':');
      const double number = parse_number();
      if (field == "value") {
        entry.value = number;
        has_value = true;
      } else if (field == "abs_tol") {
        entry.abs_tol = number;
      } else if (field == "rel_tol") {
        entry.rel_tol = number;
      } else {
        fail("unknown field '" + field + "'");
      }
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    if (!has_value) fail("entry is missing \"value\"");
    return entry;
  }

  void finish() {
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after record");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const GoldenRecord& record) {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const auto& [name, entry] : record) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << name << "\": {\"value\": " << format_double(entry.value)
       << ", \"abs_tol\": " << format_double(entry.abs_tol)
       << ", \"rel_tol\": " << format_double(entry.rel_tol) << "}";
  }
  os << "\n}\n";
  return os.str();
}

GoldenRecord parse_json(const std::string& text) {
  return JsonReader(text).parse();
}

GoldenRecord load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error(
        "cannot open golden file: " + path +
        " (regenerate with 'rascal_cli --update-golden DIR')");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_json(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_golden(const std::string& path, const GoldenRecord& record) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write golden file: " + path);
  }
  out << to_json(record);
  if (!out) {
    throw std::runtime_error("failed writing golden file: " + path);
  }
}

std::vector<std::string> compare_golden(const GoldenRecord& golden,
                                        const GoldenRecord& current) {
  std::vector<std::string> problems;
  for (const auto& [name, locked] : golden) {
    const auto it = current.find(name);
    if (it == current.end()) {
      problems.push_back("metric '" + name +
                         "' is locked but no longer computed");
      continue;
    }
    const double fresh = it->second.value;
    const double tolerance =
        locked.abs_tol + locked.rel_tol * std::abs(locked.value);
    if (!(std::abs(fresh - locked.value) <= tolerance)) {
      std::ostringstream os;
      os.precision(17);
      os << "metric '" << name << "' drifted: golden " << locked.value
         << ", current " << fresh << ", tolerance " << tolerance;
      problems.push_back(os.str());
    }
  }
  for (const auto& [name, entry] : current) {
    (void)entry;
    if (!golden.count(name)) {
      problems.push_back("metric '" + name +
                         "' is computed but not locked (update goldens)");
    }
  }
  return problems;
}

}  // namespace rascal::check

#include "check/oracle.h"

#include <cmath>
#include <sstream>

#include "core/metrics.h"
#include "ctmc/solve_cache.h"
#include "ctmc/steady_state.h"
#include "ctmc/transient.h"
#include "linalg/expm.h"
#include "linalg/workspace.h"
#include "resil/retry.h"
#include "serve/supervise.h"

namespace rascal::check {

namespace {

const char* method_name(ctmc::SteadyStateMethod method) {
  switch (method) {
    case ctmc::SteadyStateMethod::kGth: return "gth";
    case ctmc::SteadyStateMethod::kLu: return "lu";
    case ctmc::SteadyStateMethod::kPower: return "power";
    case ctmc::SteadyStateMethod::kGaussSeidel: return "gauss-seidel";
    case ctmc::SteadyStateMethod::kGmres: return "gmres";
    case ctmc::SteadyStateMethod::kBiCgStab: return "bicgstab";
  }
  return "?";
}

double availability_of(const ctmc::Ctmc& chain, const linalg::Vector& pi) {
  double up = 0.0;
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    if (chain.reward(s) >= core::kDefaultUpThreshold) up += pi[s];
  }
  return up;
}

}  // namespace

std::string OracleReport::summary() const {
  std::ostringstream os;
  os << checks << " checks, " << failures.size() << " failures";
  for (const std::string& f : failures) os << "\n  " << f;
  return os.str();
}

void OracleReport::absorb(const OracleReport& other,
                          const std::string& context) {
  checks += other.checks;
  for (const std::string& f : other.failures) {
    failures.push_back(context + ": " + f);
  }
}

void OracleReport::expect_close(const std::string& what, double lhs,
                                double rhs, double tolerance) {
  ++checks;
  const double diff = std::abs(lhs - rhs);
  if (!(diff <= tolerance) || !std::isfinite(lhs) || !std::isfinite(rhs)) {
    std::ostringstream os;
    os.precision(17);
    os << what << ": " << lhs << " vs " << rhs << " (|diff| " << diff
       << " > tol " << tolerance << ")";
    failures.push_back(os.str());
  }
}

OracleReport check_steady_state_consensus(const ctmc::Ctmc& chain,
                                          const OracleOptions& options) {
  std::vector<ctmc::SteadyStateMethod> methods = {
      ctmc::SteadyStateMethod::kGth, ctmc::SteadyStateMethod::kLu};
  if (options.include_iterative) {
    methods.push_back(ctmc::SteadyStateMethod::kPower);
    methods.push_back(ctmc::SteadyStateMethod::kGaussSeidel);
  }

  OracleReport report;
  std::vector<ctmc::SteadyState> solutions;
  solutions.reserve(methods.size());
  for (const auto method : methods) {
    try {
      solutions.push_back(ctmc::solve_steady_state(chain, method));
    } catch (const std::exception& e) {
      ++report.checks;
      report.failures.push_back(std::string(method_name(method)) +
                                ": threw: " + e.what());
      solutions.push_back({});
    }
  }

  // Each solution must satisfy its own balance equations...
  for (std::size_t m = 0; m < methods.size(); ++m) {
    if (solutions[m].probabilities.empty()) continue;
    report.expect_close(std::string("residual ||pi Q|| (") +
                            method_name(methods[m]) + ")",
                        solutions[m].residual, 0.0,
                        options.steady_tolerance);
  }
  // ...and all pairs must agree state-by-state and on availability.
  for (std::size_t a = 0; a < methods.size(); ++a) {
    for (std::size_t b = a + 1; b < methods.size(); ++b) {
      const auto& pa = solutions[a].probabilities;
      const auto& pb = solutions[b].probabilities;
      if (pa.empty() || pb.empty()) continue;
      const std::string pair = std::string(method_name(methods[a])) + " vs " +
                               method_name(methods[b]);
      for (std::size_t s = 0; s < chain.num_states(); ++s) {
        report.expect_close(pair + " pi[" + chain.state_name(s) + "]",
                            pa[s], pb[s], options.steady_tolerance);
      }
      report.expect_close(pair + " availability",
                          availability_of(chain, pa),
                          availability_of(chain, pb),
                          options.steady_tolerance);
    }
  }
  return report;
}

OracleReport check_steady_state_against(const ctmc::Ctmc& chain,
                                        const linalg::Vector& expected,
                                        const OracleOptions& options) {
  std::vector<ctmc::SteadyStateMethod> methods = {
      ctmc::SteadyStateMethod::kGth, ctmc::SteadyStateMethod::kLu};
  if (options.include_iterative) {
    methods.push_back(ctmc::SteadyStateMethod::kPower);
    methods.push_back(ctmc::SteadyStateMethod::kGaussSeidel);
  }
  OracleReport report;
  for (const auto method : methods) {
    ctmc::SteadyState steady;
    try {
      steady = ctmc::solve_steady_state(chain, method);
    } catch (const std::exception& e) {
      // Iterative methods may honestly refuse to converge on skewed
      // chains (e.g. strongly drifted birth-death walks); refusal is
      // not disagreement.  Direct methods have no such excuse.
      const bool iterative = method == ctmc::SteadyStateMethod::kPower ||
                             method == ctmc::SteadyStateMethod::kGaussSeidel;
      if (!iterative) {
        ++report.checks;
        report.failures.push_back(std::string(method_name(method)) +
                                  ": threw: " + e.what());
      }
      continue;
    }
    for (std::size_t s = 0; s < chain.num_states(); ++s) {
      report.expect_close(std::string(method_name(method)) +
                              " vs closed form pi[" + chain.state_name(s) +
                              "]",
                          steady.probabilities[s], expected[s],
                          options.steady_tolerance);
    }
  }
  return report;
}

OracleReport check_transient_consensus(const ctmc::Ctmc& chain, double t,
                                       const OracleOptions& options) {
  OracleReport report;
  const auto uni = ctmc::transient_distribution(chain, ctmc::StateId{0}, t);

  linalg::Matrix qt = chain.generator();
  for (std::size_t r = 0; r < qt.rows(); ++r) {
    for (std::size_t c = 0; c < qt.cols(); ++c) qt(r, c) *= t;
  }
  const linalg::Matrix p = linalg::matrix_exponential(qt);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    report.expect_close("uniformization vs expm pi_t[" +
                            chain.state_name(s) + "]",
                        uni.probabilities[s], p(0, s),
                        options.transient_tolerance);
  }
  double mass = 0.0;
  for (double x : uni.probabilities) mass += x;
  report.expect_close("uniformization mass", mass, 1.0,
                      options.transient_tolerance);
  return report;
}

OracleReport check_workspace_consensus(const ctmc::Ctmc& chain, double t,
                                       const OracleOptions& options) {
  std::vector<ctmc::SteadyStateMethod> methods = {
      ctmc::SteadyStateMethod::kGth, ctmc::SteadyStateMethod::kLu};
  if (options.include_iterative) {
    methods.push_back(ctmc::SteadyStateMethod::kPower);
    methods.push_back(ctmc::SteadyStateMethod::kGaussSeidel);
  }

  OracleReport report;
  // One workspace shared across all methods and repeats, so every
  // solve after the first runs against deliberately dirty scratch.
  linalg::SolveWorkspace workspace;
  ctmc::SolveCache cache;
  for (const auto method : methods) {
    const std::string name = method_name(method);
    ctmc::SteadyState fresh;
    try {
      fresh = ctmc::solve_steady_state(chain, method);
    } catch (const std::exception&) {
      // A method that honestly refuses the chain must refuse it the
      // same way through a workspace; success would be divergence.
      ++report.checks;
      bool reused_threw = false;
      try {
        ctmc::SolveControl control;
        control.workspace = &workspace;
        (void)ctmc::solve_steady_state(chain, method, ctmc::Validation::kOn,
                                       control);
      } catch (const std::exception&) {
        reused_threw = true;
      }
      if (!reused_threw) {
        report.failures.push_back(name +
                                  ": fresh solve threw but workspace "
                                  "solve succeeded");
      }
      continue;
    }

    ctmc::SolveControl control;
    control.workspace = &workspace;
    for (int rep = 0; rep < 2; ++rep) {
      const auto reused = ctmc::solve_steady_state(
          chain, method, ctmc::Validation::kOn, control);
      const std::string what =
          name + " workspace rep " + std::to_string(rep);
      for (std::size_t s = 0; s < chain.num_states(); ++s) {
        report.expect_close(what + " pi[" + chain.state_name(s) + "]",
                            reused.probabilities[s], fresh.probabilities[s],
                            0.0);
      }
      report.expect_close(what + " residual", reused.residual, fresh.residual,
                          0.0);
    }

    // Single-entry memo: the first call per method misses (the key
    // changed), the second must hit and both must match fresh exactly.
    const ctmc::SteadyState first = cache.steady_state(chain, method);
    const std::uint64_t hits_before = cache.hits();
    const ctmc::SteadyState second = cache.steady_state(chain, method);
    ++report.checks;
    if (cache.hits() != hits_before + 1) {
      report.failures.push_back(name + ": repeated cache solve did not hit");
    }
    for (std::size_t s = 0; s < chain.num_states(); ++s) {
      report.expect_close(name + " cache pi[" + chain.state_name(s) + "]",
                          first.probabilities[s], fresh.probabilities[s], 0.0);
      report.expect_close(name + " cache hit pi[" + chain.state_name(s) + "]",
                          second.probabilities[s], fresh.probabilities[s],
                          0.0);
    }
  }

  // Transient distribution through the (still dirty) workspace.
  const auto fresh_dist =
      ctmc::transient_distribution(chain, ctmc::StateId{0}, t);
  ctmc::TransientOptions ws_options;
  ws_options.workspace = &workspace;
  for (int rep = 0; rep < 2; ++rep) {
    const auto reused =
        ctmc::transient_distribution(chain, ctmc::StateId{0}, t, ws_options);
    const std::string what = "transient workspace rep " + std::to_string(rep);
    for (std::size_t s = 0; s < chain.num_states(); ++s) {
      report.expect_close(what + " pi_t[" + chain.state_name(s) + "]",
                          reused.probabilities[s], fresh_dist.probabilities[s],
                          0.0);
    }
    ++report.checks;
    if (reused.terms != fresh_dist.terms) {
      report.failures.push_back(what + ": Poisson term count diverged");
    }
  }

  // Batched multi-RHS interval rewards: entry j must match a
  // standalone single-set evaluation, and the chain-reward set must
  // match the scalar expected_interval_reward path.
  linalg::Vector initial(chain.num_states(), 0.0);
  initial[0] = 1.0;
  std::vector<linalg::Vector> reward_sets;
  linalg::Vector chain_rewards(chain.num_states(), 0.0);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    chain_rewards[s] = chain.reward(s);
  }
  reward_sets.push_back(chain_rewards);
  reward_sets.emplace_back(chain.num_states(), 1.0);
  linalg::Vector ramp(chain.num_states(), 0.0);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    ramp[s] = static_cast<double>(s + 1);
  }
  reward_sets.push_back(ramp);

  const auto batched =
      ctmc::expected_interval_rewards(chain, initial, t, reward_sets,
                                      ws_options);
  const auto scalar = ctmc::expected_interval_reward(chain, initial, t);
  report.expect_close("batched[chain rewards] vs scalar accumulated",
                      batched[0].accumulated_reward, scalar.accumulated_reward,
                      0.0);
  report.expect_close("batched[chain rewards] vs scalar time-averaged",
                      batched[0].time_averaged, scalar.time_averaged, 0.0);
  for (std::size_t j = 0; j < reward_sets.size(); ++j) {
    const auto lone =
        ctmc::expected_interval_rewards(chain, initial, t, {reward_sets[j]})
            .front();
    const std::string what = "batched[" + std::to_string(j) + "]";
    report.expect_close(what + " accumulated", batched[j].accumulated_reward,
                        lone.accumulated_reward, 0.0);
    report.expect_close(what + " time-averaged", batched[j].time_averaged,
                        lone.time_averaged, 0.0);
    ++report.checks;
    if (batched[j].terms != lone.terms) {
      report.failures.push_back(what + ": Poisson term count diverged");
    }
  }
  return report;
}

OracleReport check_simulation_consensus(const ctmc::Ctmc& chain,
                                        const sim::CtmcSimOptions& sim_options,
                                        const OracleOptions& options) {
  OracleReport report;
  const auto steady =
      ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGth);
  const double analytic = availability_of(chain, steady.probabilities);
  const auto sim = sim::simulate_ctmc(chain, sim_options);
  const double half_width =
      0.5 * (sim.availability_ci95.upper - sim.availability_ci95.lower);
  const double tolerance =
      options.ci_factor * half_width + options.ci_absolute_floor;
  report.expect_close("analytic vs simulated availability (CI-aware)",
                      analytic, sim.availability, tolerance);
  return report;
}

OracleReport check_krylov_consensus(const ctmc::Ctmc& chain,
                                    const OracleOptions& options) {
  OracleReport report;

  ctmc::SteadyState ref;
  bool ref_refused = false;
  try {
    ref = ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGth);
  } catch (const std::exception&) {
    ref_refused = true;
  }

  const ctmc::SteadyStateMethod methods[] = {
      ctmc::SteadyStateMethod::kGmres, ctmc::SteadyStateMethod::kBiCgStab};
  const linalg::PrecondKind preconds[] = {linalg::PrecondKind::kNone,
                                          linalg::PrecondKind::kJacobi,
                                          linalg::PrecondKind::kIlu0};

  // One workspace shared across every variant, so each solve after
  // the first runs against deliberately dirty Krylov scratch.
  linalg::SolveWorkspace workspace;
  for (const auto method : methods) {
    for (const auto precond : preconds) {
      const std::string name = std::string(method_name(method)) + "+" +
                               linalg::precond_name(precond);
      ctmc::SolveControl control;
      control.precond = precond;

      ctmc::SteadyState fresh;
      try {
        fresh = ctmc::solve_steady_state(chain, method, ctmc::Validation::kOn,
                                         control);
      } catch (const std::exception& e) {
        ++report.checks;
        // A chain the dense reference refuses must be refused by the
        // sparse engine too; anything else is divergence.
        if (!ref_refused) {
          report.failures.push_back(name + ": threw: " + e.what());
        }
        continue;
      }
      if (ref_refused) {
        ++report.checks;
        report.failures.push_back(name +
                                  ": solved a chain the GTH reference "
                                  "refused");
        continue;
      }

      report.expect_close("residual ||pi Q|| (" + name + ")", fresh.residual,
                          0.0, options.steady_tolerance);
      for (std::size_t s = 0; s < chain.num_states(); ++s) {
        report.expect_close(name + " vs gth pi[" + chain.state_name(s) + "]",
                            fresh.probabilities[s], ref.probabilities[s],
                            options.steady_tolerance);
      }
      report.expect_close(name + " vs gth availability",
                          availability_of(chain, fresh.probabilities),
                          availability_of(chain, ref.probabilities),
                          options.steady_tolerance);

      // Bit-identity through a reused, dirty workspace.
      control.workspace = &workspace;
      for (int rep = 0; rep < 2; ++rep) {
        const auto reused = ctmc::solve_steady_state(
            chain, method, ctmc::Validation::kOn, control);
        const std::string what = name + " workspace rep " +
                                 std::to_string(rep);
        for (std::size_t s = 0; s < chain.num_states(); ++s) {
          report.expect_close(what + " pi[" + chain.state_name(s) + "]",
                              reused.probabilities[s], fresh.probabilities[s],
                              0.0);
        }
        report.expect_close(what + " residual", reused.residual,
                            fresh.residual, 0.0);
      }
    }
  }
  return report;
}

OracleReport check_shared_cache_consensus(const ctmc::Ctmc& chain,
                                          const OracleOptions& options) {
  OracleReport report;

  std::vector<ctmc::SteadyStateMethod> methods = {
      ctmc::SteadyStateMethod::kGth, ctmc::SteadyStateMethod::kLu};
  if (options.include_iterative) {
    methods.push_back(ctmc::SteadyStateMethod::kPower);
    methods.push_back(ctmc::SteadyStateMethod::kGaussSeidel);
  }

  for (const auto method : methods) {
    const std::string name = method_name(method);
    const ctmc::SteadyState fresh = ctmc::solve_steady_state(chain, method);

    ctmc::SharedSolveCache shared;
    ctmc::SolveCache first_worker;
    first_worker.set_shared(&shared);
    ctmc::SolveCache second_worker;
    second_worker.set_shared(&shared);

    const auto expect_bits = [&](const std::string& what,
                                 const ctmc::SteadyState& got) {
      for (std::size_t s = 0; s < chain.num_states(); ++s) {
        report.expect_close(what + " pi[" + chain.state_name(s) + "]",
                            got.probabilities[s], fresh.probabilities[s],
                            0.0);
      }
      report.expect_close(what + " residual", got.residual, fresh.residual,
                          0.0);
    };

    // Cold miss: solved locally, published to the shared tier.
    expect_bits(name + " cold miss", first_worker.steady_state(chain, method));
    // Local hit: served from the worker's own entry.
    expect_bits(name + " local hit", first_worker.steady_state(chain, method));
    // Shared hit: a different worker's cache pulls the published copy.
    expect_bits(name + " shared hit",
                second_worker.steady_state(chain, method));

    const ctmc::SharedSolveCache::Stats stats = shared.stats();
    report.expect_close(name + " shared tier published",
                        static_cast<double>(stats.insertions), 1.0, 0.0);
    report.expect_close(name + " shared tier hit",
                        static_cast<double>(stats.hits), 1.0, 0.0);
  }
  return report;
}

OracleReport check_retry_consensus(const ctmc::Ctmc& chain,
                                   const OracleOptions& options) {
  OracleReport report;

  std::vector<ctmc::SteadyStateMethod> methods = {
      ctmc::SteadyStateMethod::kGth, ctmc::SteadyStateMethod::kGmres,
      ctmc::SteadyStateMethod::kBiCgStab};
  if (options.include_iterative) {
    methods.push_back(ctmc::SteadyStateMethod::kPower);
    methods.push_back(ctmc::SteadyStateMethod::kGaussSeidel);
  }

  for (const auto method : methods) {
    const std::string name = method_name(method);
    const ctmc::SteadyState direct = ctmc::solve_steady_state(chain, method);

    serve::SolveSpec spec;
    spec.method = method;
    serve::SupervisionOptions supervision;
    supervision.retry.max_attempts = 3;

    // Every fault count the policy can absorb must recover to the
    // exact bits of the never-faulted solve: a retried transient
    // replays the identical attempt, so the record cannot reveal
    // whether the fault happened.
    for (std::size_t faults = 0; faults + 1 <= supervision.retry.max_attempts;
         ++faults) {
      supervision.inject_transient_faults = faults;
      ctmc::SolveCache cache;  // cold per run: no bits smuggled across
      const serve::SupervisedSolve solved =
          serve::supervised_solve(chain, spec, cache, supervision);
      const std::string what =
          name + " recovered after " + std::to_string(faults) + " fault(s)";
      for (std::size_t s = 0; s < chain.num_states(); ++s) {
        report.expect_close(what + " pi[" + chain.state_name(s) + "]",
                            solved.steady.probabilities[s],
                            direct.probabilities[s], 0.0);
      }
      report.expect_close(what + " residual", solved.steady.residual,
                          direct.residual, 0.0);
      report.expect_close(what + " attempts consumed",
                          static_cast<double>(solved.attempts),
                          static_cast<double>(faults + 1), 0.0);
      report.expect_close(what + " stayed on rung 0",
                          static_cast<double>(solved.rung), 0.0, 0.0);
      report.expect_close(what + " no fallback annotation",
                          solved.fallback.empty() ? 1.0 : 0.0, 1.0, 0.0);
    }

    // One fault past the budget: the supervisor must throw the
    // transient (classified, never a silent partial result).
    supervision.inject_transient_faults = supervision.retry.max_attempts;
    double exhausted_as_transient = 0.0;
    try {
      ctmc::SolveCache cache;
      (void)serve::supervised_solve(chain, spec, cache, supervision);
    } catch (const std::exception& failure) {
      if (resil::classify(failure) == resil::ErrorClass::kTransient) {
        exhausted_as_transient = 1.0;
      }
    }
    report.expect_close(name + " exhausted budget throws transient",
                        exhausted_as_transient, 1.0, 0.0);
  }

  // The ladder is a pure function of its inputs: identical rungs on
  // repeated calls, rung 0 always the requested configuration, the
  // dense descent terminating on exact GTH and the sparse descent
  // never leaving the Krylov family.
  const auto rung_eq = [](const serve::LadderRung& a,
                          const serve::LadderRung& b) {
    return a.method == b.method && a.precond == b.precond;
  };
  for (const bool dense : {true, false}) {
    const std::size_t states = dense ? 8 : 1u << 20;
    const std::string regime = dense ? "dense" : "sparse";
    const std::vector<serve::LadderRung> first = serve::fallback_ladder(
        ctmc::SteadyStateMethod::kGmres, linalg::PrecondKind::kIlu0, states, 0);
    const std::vector<serve::LadderRung> second = serve::fallback_ladder(
        ctmc::SteadyStateMethod::kGmres, linalg::PrecondKind::kIlu0, states, 0);
    bool stable = first.size() == second.size();
    for (std::size_t i = 0; stable && i < first.size(); ++i) {
      stable = rung_eq(first[i], second[i]);
    }
    report.expect_close(regime + " ladder deterministic", stable ? 1.0 : 0.0,
                        1.0, 0.0);
    report.expect_close(
        regime + " ladder rung 0 is the request",
        first.front().method == ctmc::SteadyStateMethod::kGmres ? 1.0 : 0.0,
        1.0, 0.0);
    if (dense) {
      report.expect_close(
          "dense ladder ends on exact GTH",
          first.back().method == ctmc::SteadyStateMethod::kGth ? 1.0 : 0.0,
          1.0, 0.0);
    } else {
      bool krylov_only = true;
      for (const serve::LadderRung& rung : first) {
        krylov_only = krylov_only &&
                      (rung.method == ctmc::SteadyStateMethod::kGmres ||
                       rung.method == ctmc::SteadyStateMethod::kBiCgStab);
      }
      report.expect_close("sparse ladder never densifies",
                          krylov_only ? 1.0 : 0.0, 1.0, 0.0);
    }
  }
  return report;
}

}  // namespace rascal::check

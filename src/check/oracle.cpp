#include "check/oracle.h"

#include <cmath>
#include <sstream>

#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "ctmc/transient.h"
#include "linalg/expm.h"

namespace rascal::check {

namespace {

const char* method_name(ctmc::SteadyStateMethod method) {
  switch (method) {
    case ctmc::SteadyStateMethod::kGth: return "gth";
    case ctmc::SteadyStateMethod::kLu: return "lu";
    case ctmc::SteadyStateMethod::kPower: return "power";
    case ctmc::SteadyStateMethod::kGaussSeidel: return "gauss-seidel";
  }
  return "?";
}

double availability_of(const ctmc::Ctmc& chain, const linalg::Vector& pi) {
  double up = 0.0;
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    if (chain.reward(s) >= core::kDefaultUpThreshold) up += pi[s];
  }
  return up;
}

}  // namespace

std::string OracleReport::summary() const {
  std::ostringstream os;
  os << checks << " checks, " << failures.size() << " failures";
  for (const std::string& f : failures) os << "\n  " << f;
  return os.str();
}

void OracleReport::absorb(const OracleReport& other,
                          const std::string& context) {
  checks += other.checks;
  for (const std::string& f : other.failures) {
    failures.push_back(context + ": " + f);
  }
}

void OracleReport::expect_close(const std::string& what, double lhs,
                                double rhs, double tolerance) {
  ++checks;
  const double diff = std::abs(lhs - rhs);
  if (!(diff <= tolerance) || !std::isfinite(lhs) || !std::isfinite(rhs)) {
    std::ostringstream os;
    os.precision(17);
    os << what << ": " << lhs << " vs " << rhs << " (|diff| " << diff
       << " > tol " << tolerance << ")";
    failures.push_back(os.str());
  }
}

OracleReport check_steady_state_consensus(const ctmc::Ctmc& chain,
                                          const OracleOptions& options) {
  std::vector<ctmc::SteadyStateMethod> methods = {
      ctmc::SteadyStateMethod::kGth, ctmc::SteadyStateMethod::kLu};
  if (options.include_iterative) {
    methods.push_back(ctmc::SteadyStateMethod::kPower);
    methods.push_back(ctmc::SteadyStateMethod::kGaussSeidel);
  }

  OracleReport report;
  std::vector<ctmc::SteadyState> solutions;
  solutions.reserve(methods.size());
  for (const auto method : methods) {
    try {
      solutions.push_back(ctmc::solve_steady_state(chain, method));
    } catch (const std::exception& e) {
      ++report.checks;
      report.failures.push_back(std::string(method_name(method)) +
                                ": threw: " + e.what());
      solutions.push_back({});
    }
  }

  // Each solution must satisfy its own balance equations...
  for (std::size_t m = 0; m < methods.size(); ++m) {
    if (solutions[m].probabilities.empty()) continue;
    report.expect_close(std::string("residual ||pi Q|| (") +
                            method_name(methods[m]) + ")",
                        solutions[m].residual, 0.0,
                        options.steady_tolerance);
  }
  // ...and all pairs must agree state-by-state and on availability.
  for (std::size_t a = 0; a < methods.size(); ++a) {
    for (std::size_t b = a + 1; b < methods.size(); ++b) {
      const auto& pa = solutions[a].probabilities;
      const auto& pb = solutions[b].probabilities;
      if (pa.empty() || pb.empty()) continue;
      const std::string pair = std::string(method_name(methods[a])) + " vs " +
                               method_name(methods[b]);
      for (std::size_t s = 0; s < chain.num_states(); ++s) {
        report.expect_close(pair + " pi[" + chain.state_name(s) + "]",
                            pa[s], pb[s], options.steady_tolerance);
      }
      report.expect_close(pair + " availability",
                          availability_of(chain, pa),
                          availability_of(chain, pb),
                          options.steady_tolerance);
    }
  }
  return report;
}

OracleReport check_steady_state_against(const ctmc::Ctmc& chain,
                                        const linalg::Vector& expected,
                                        const OracleOptions& options) {
  std::vector<ctmc::SteadyStateMethod> methods = {
      ctmc::SteadyStateMethod::kGth, ctmc::SteadyStateMethod::kLu};
  if (options.include_iterative) {
    methods.push_back(ctmc::SteadyStateMethod::kPower);
    methods.push_back(ctmc::SteadyStateMethod::kGaussSeidel);
  }
  OracleReport report;
  for (const auto method : methods) {
    ctmc::SteadyState steady;
    try {
      steady = ctmc::solve_steady_state(chain, method);
    } catch (const std::exception& e) {
      // Iterative methods may honestly refuse to converge on skewed
      // chains (e.g. strongly drifted birth-death walks); refusal is
      // not disagreement.  Direct methods have no such excuse.
      const bool iterative = method == ctmc::SteadyStateMethod::kPower ||
                             method == ctmc::SteadyStateMethod::kGaussSeidel;
      if (!iterative) {
        ++report.checks;
        report.failures.push_back(std::string(method_name(method)) +
                                  ": threw: " + e.what());
      }
      continue;
    }
    for (std::size_t s = 0; s < chain.num_states(); ++s) {
      report.expect_close(std::string(method_name(method)) +
                              " vs closed form pi[" + chain.state_name(s) +
                              "]",
                          steady.probabilities[s], expected[s],
                          options.steady_tolerance);
    }
  }
  return report;
}

OracleReport check_transient_consensus(const ctmc::Ctmc& chain, double t,
                                       const OracleOptions& options) {
  OracleReport report;
  const auto uni = ctmc::transient_distribution(chain, ctmc::StateId{0}, t);

  linalg::Matrix qt = chain.generator();
  for (std::size_t r = 0; r < qt.rows(); ++r) {
    for (std::size_t c = 0; c < qt.cols(); ++c) qt(r, c) *= t;
  }
  const linalg::Matrix p = linalg::matrix_exponential(qt);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    report.expect_close("uniformization vs expm pi_t[" +
                            chain.state_name(s) + "]",
                        uni.probabilities[s], p(0, s),
                        options.transient_tolerance);
  }
  double mass = 0.0;
  for (double x : uni.probabilities) mass += x;
  report.expect_close("uniformization mass", mass, 1.0,
                      options.transient_tolerance);
  return report;
}

OracleReport check_simulation_consensus(const ctmc::Ctmc& chain,
                                        const sim::CtmcSimOptions& sim_options,
                                        const OracleOptions& options) {
  OracleReport report;
  const auto steady =
      ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGth);
  const double analytic = availability_of(chain, steady.probabilities);
  const auto sim = sim::simulate_ctmc(chain, sim_options);
  const double half_width =
      0.5 * (sim.availability_ci95.upper - sim.availability_ci95.lower);
  const double tolerance =
      options.ci_factor * half_width + options.ci_absolute_floor;
  report.expect_close("analytic vs simulated availability (CI-aware)",
                      analytic, sim.availability, tolerance);
  return report;
}

}  // namespace rascal::check

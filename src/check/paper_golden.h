// Reproduced paper headline numbers (Secs. 5-7) as golden records.
//
// Three groups, one JSON file each under tests/golden/:
//   jsas        — Table 2 / Table 3 system results (availability,
//                 yearly downtime and its AS/HADB attribution, MTBF)
//   hadb        — HADB node-pair submodel (Figure 3) and the explicit
//                 finite-spare-pool extension
//   uncertainty — Section 7 Monte Carlo statistics for Configs 1 and 2
//                 (mean yearly downtime, 80%/90% intervals, five-9s
//                 fraction), fixed seed, 300 snapshots
//   kofn_as     — k-of-n replicated-AS extension solved through the
//                 sparse GMRES path (regresses the Krylov engine)
//
// Everything is deterministic: analytic metrics exactly, sampled
// metrics via the fixed-seed RandomEngine.  Tolerances implement the
// policy in TESTING.md: tight (1e-6 relative) for solver outputs,
// looser (1e-3 relative) for Monte Carlo statistics so benign
// floating-point reorderings pass while RNG-scheme or model drift
// fails.
#pragma once

#include <string>
#include <vector>

#include "check/golden.h"

namespace rascal::check {

/// Group names, in the order files are written.
[[nodiscard]] std::vector<std::string> paper_golden_groups();

/// Freshly computes the record for one group.  Throws
/// std::invalid_argument for an unknown group name.
[[nodiscard]] GoldenRecord compute_paper_golden(const std::string& group);

}  // namespace rascal::check

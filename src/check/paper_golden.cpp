#include "check/paper_golden.h"

#include <stdexcept>
#include <utility>

#include "analysis/uncertainty.h"
#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "models/hadb_pair.h"
#include "models/hadb_spares.h"
#include "models/jsas_system.h"
#include "models/kofn_as.h"
#include "models/params.h"

namespace rascal::check {

namespace {

// Tolerance policy (see TESTING.md).
constexpr double kAnalyticRelTol = 1e-6;
constexpr double kMonteCarloRelTol = 1e-3;

GoldenEntry analytic(double value) {
  return {value, 0.0, kAnalyticRelTol};
}

GoldenEntry sampled(double value) {
  return {value, 1e-9, kMonteCarloRelTol};
}

void add_jsas_config(GoldenRecord& record, const std::string& prefix,
                     const models::JsasConfig& config) {
  const models::JsasResult r =
      models::solve_jsas(config, models::default_parameters());
  record[prefix + ".availability"] = analytic(r.availability);
  record[prefix + ".downtime_minutes_per_year"] =
      analytic(r.downtime_minutes_per_year);
  record[prefix + ".downtime_as_minutes"] = analytic(r.downtime_as_minutes);
  record[prefix + ".downtime_hadb_minutes"] =
      analytic(r.downtime_hadb_minutes);
  record[prefix + ".mtbf_hours"] = analytic(r.mtbf_hours);
}

GoldenRecord jsas_golden() {
  GoldenRecord record;
  add_jsas_config(record, "jsas.config1", models::JsasConfig::config1());
  add_jsas_config(record, "jsas.config2", models::JsasConfig::config2());
  for (const std::size_t n : {1, 2, 4, 6, 8, 10}) {
    const models::JsasResult r = models::solve_jsas(
        models::JsasConfig::symmetric(n), models::default_parameters());
    const std::string prefix = "jsas.table3.n" + std::to_string(n);
    record[prefix + ".availability"] = analytic(r.availability);
    record[prefix + ".downtime_minutes_per_year"] =
        analytic(r.downtime_minutes_per_year);
    record[prefix + ".mtbf_hours"] = analytic(r.mtbf_hours);
  }
  return record;
}

GoldenRecord hadb_golden() {
  GoldenRecord record;
  const expr::ParameterSet params = models::default_parameters();
  const auto pair_metrics =
      core::solve_availability(models::hadb_pair_model().bind(params));
  record["hadb.pair.availability"] = analytic(pair_metrics.availability);
  record["hadb.pair.downtime_minutes_per_year"] =
      analytic(pair_metrics.downtime_minutes_per_year);
  record["hadb.pair.mtbf_hours"] = analytic(pair_metrics.mtbf_hours);
  record["hadb.pair.mttr_hours"] = analytic(pair_metrics.mttr_hours);

  // Explicit spare pool, 24 h replenishment (the recovery-metric
  // scenario of the extension model).
  expr::ParameterSet spares_params = params;
  spares_params.set(models::kTreplenishParam, 24.0);
  for (const std::size_t spares : {1, 2}) {
    const auto metrics = core::solve_availability(
        models::hadb_pair_with_spares_model(spares, spares_params));
    const std::string prefix = "hadb.spares" + std::to_string(spares);
    record[prefix + ".availability"] = analytic(metrics.availability);
    record[prefix + ".downtime_minutes_per_year"] =
        analytic(metrics.downtime_minutes_per_year);
    record[prefix + ".mttr_hours"] = analytic(metrics.mttr_hours);
  }
  return record;
}

// The Section 7 parameter ranges (same as tests/test_jsas_results.cpp).
std::vector<stats::ParameterRange> uncertainty_ranges() {
  return {{"as_La_as", 10.0 / 8760.0, 50.0 / 8760.0},
          {"hadb_La_hadb", 1.0 / 8760.0, 4.0 / 8760.0},
          {"as_La_os", 0.5 / 8760.0, 2.0 / 8760.0},
          {"as_La_hw", 0.5 / 8760.0, 2.0 / 8760.0},
          {"hadb_La_os", 0.5 / 8760.0, 2.0 / 8760.0},
          {"hadb_La_hw", 0.5 / 8760.0, 2.0 / 8760.0},
          {"as_Tstart_long", 0.5, 3.0},
          {"hadb_FIR", 0.0, 0.002}};
}

void add_uncertainty_config(GoldenRecord& record, const std::string& prefix,
                            const models::JsasConfig& config) {
  analysis::UncertaintyOptions options;
  options.samples = 300;
  options.seed = 2004;
  const auto result = analysis::uncertainty_analysis(
      [&config](const expr::ParameterSet& params) {
        return models::solve_jsas(config, params).downtime_minutes_per_year;
      },
      models::default_parameters(), uncertainty_ranges(), options);
  record[prefix + ".mean_downtime_minutes"] = sampled(result.mean);
  record[prefix + ".interval80_lower"] = sampled(result.interval80.lower);
  record[prefix + ".interval80_upper"] = sampled(result.interval80.upper);
  record[prefix + ".interval90_lower"] = sampled(result.interval90.lower);
  record[prefix + ".interval90_upper"] = sampled(result.interval90.upper);
  record[prefix + ".fraction_below_5.25min"] =
      sampled(result.fraction_below(5.25));
}

GoldenRecord uncertainty_golden() {
  GoldenRecord record;
  add_uncertainty_config(record, "uncertainty.config1",
                         models::JsasConfig::config1());
  add_uncertainty_config(record, "uncertainty.config2",
                         models::JsasConfig::config2());
  return record;
}

// k-of-n replicated-AS tier, solved through the sparse Krylov path
// (GMRES is forced via a sparse_threshold below the state count, so
// this record regresses the Krylov engine end to end, not GTH).
GoldenRecord kofn_as_golden() {
  GoldenRecord record;
  ctmc::SolveControl control;
  control.sparse_threshold = 8;  // every config below exceeds this
  control.escalate = false;
  for (const auto& [quorum, label] :
       {std::pair<std::size_t, const char*>{4, "quorum4"},
        std::pair<std::size_t, const char*>{6, "quorum6"}}) {
    models::KofnAsConfig config;
    config.nodes = 6;
    config.quorum = quorum;
    config.repair_crews = 2;
    const ctmc::Ctmc chain = models::kofn_as_model(config);
    const auto steady = ctmc::solve_steady_state(
        chain, ctmc::SteadyStateMethod::kGmres, ctmc::Validation::kOn,
        control);
    const auto metrics = core::availability_metrics(chain, steady);
    const std::string prefix = std::string("kofn_as.n6.") + label;
    record[prefix + ".availability"] = analytic(metrics.availability);
    record[prefix + ".downtime_minutes_per_year"] =
        analytic(metrics.downtime_minutes_per_year);
    record[prefix + ".mtbf_hours"] = analytic(metrics.mtbf_hours);
    record[prefix + ".mttr_hours"] = analytic(metrics.mttr_hours);
  }
  return record;
}

}  // namespace

std::vector<std::string> paper_golden_groups() {
  return {"jsas", "hadb", "uncertainty", "kofn_as"};
}

GoldenRecord compute_paper_golden(const std::string& group) {
  if (group == "jsas") return jsas_golden();
  if (group == "hadb") return hadb_golden();
  if (group == "uncertainty") return uncertainty_golden();
  if (group == "kofn_as") return kofn_as_golden();
  throw std::invalid_argument("unknown golden group: " + group);
}

}  // namespace rascal::check

// Grassmann-Taksar-Heyman (GTH) algorithm for the stationary
// distribution of an irreducible CTMC or DTMC.
//
// GTH performs Gaussian elimination using only the off-diagonal rates
// and never subtracts nearly-equal quantities, which makes it the
// method of choice for availability models whose rates span many
// orders of magnitude (e.g. 1e-7/h failure rates against 60/h repair
// rates).  See Grassmann, Taksar & Heyman, Oper. Res. 33(5), 1985.
#pragma once

#include "linalg/matrix.h"

namespace rascal::linalg {

/// Computes the stationary vector pi of the generator matrix Q
/// (pi Q = 0, sum pi = 1).  Q must be square with nonnegative
/// off-diagonal entries; the diagonal is ignored and reconstructed as
/// the negative row sum, so callers may pass either a full generator
/// or just the rate matrix.
///
/// Throws std::invalid_argument for non-square input or negative
/// off-diagonal entries, and std::domain_error when the chain is
/// reducible in a way that leaves a zero pivot (no single recurrent
/// class reachable from every state).
[[nodiscard]] Vector gth_stationary(Matrix q);

/// In-place variant for workspace reuse: `q` is consumed as the
/// elimination scratch and `pi` is resized and overwritten with the
/// stationary vector.  Runs the identical operation sequence as
/// gth_stationary (which delegates here), so results are bit-identical
/// whether or not the buffers are recycled.
void gth_stationary_in(Matrix& q, Vector& pi);

/// Stationary vector of a DTMC transition-probability matrix P
/// (pi P = pi).  Internally converts to the generator P - I and reuses
/// gth_stationary.
[[nodiscard]] Vector gth_stationary_dtmc(const Matrix& p);

}  // namespace rascal::linalg

#include "linalg/matrix.h"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace rascal::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() == 0 ? 0 : rows.begin()->size()) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::reshape(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Vector Matrix::multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::left_multiply(const Vector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("Matrix::left_multiply: dimension mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

double norm2(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm1(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double norm_inf(const Vector& v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector subtract(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("subtract: length mismatch");
  }
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void normalize_to_sum_one(Vector& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    throw std::domain_error("normalize_to_sum_one: non-positive sum");
  }
  for (double& x : v) x /= sum;
}

}  // namespace rascal::linalg

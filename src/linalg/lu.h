// LU decomposition with partial pivoting and linear solves.
#pragma once

#include "linalg/matrix.h"

namespace rascal::linalg {

/// LU factorisation with partial (row) pivoting: P A = L U.
/// Throws std::invalid_argument for non-square input and
/// std::domain_error when the matrix is numerically singular.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b.  Throws std::invalid_argument on size mismatch.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A X = B column by column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Determinant of A (product of U diagonal with pivot sign).
  [[nodiscard]] double determinant() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;                      // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int pivot_sign_ = 1;
};

/// One-shot convenience: solves A x = b via LU.
[[nodiscard]] Vector solve_linear_system(Matrix a, const Vector& b);

}  // namespace rascal::linalg

// LU decomposition with partial pivoting and linear solves.
#pragma once

#include "linalg/matrix.h"

namespace rascal::linalg {

/// LU factorisation with partial (row) pivoting: P A = L U.
/// Throws std::invalid_argument for non-square input and
/// std::domain_error when the matrix is numerically singular.
class LuDecomposition {
 public:
  /// Empty decomposition; call refactor() before solving.  Exists so a
  /// SolveWorkspace-owning caller can keep one LuDecomposition alive and
  /// refactorise into it, reusing the packed-LU storage across solves.
  LuDecomposition() = default;

  explicit LuDecomposition(Matrix a);

  /// Re-runs the factorisation on a new matrix, reusing the existing
  /// packed-LU and permutation storage when shapes allow.  The
  /// elimination is the same operation sequence as the constructor, so
  /// a refactored decomposition solves bit-identically to a fresh one.
  void refactor(const Matrix& a);
  void refactor(Matrix&& a);

  /// Solves A x = b.  Throws std::invalid_argument on size mismatch.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A x = b into caller-owned storage (x is resized; b and x
  /// may not alias).  Identical substitution order to solve(), shared
  /// via a common implementation.
  void solve_into(const Vector& b, Vector& x) const;

  /// Solves A X = B column by column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Solves A x_i = b_i for a batch of right-hand sides, reusing this
  /// one factorisation.  Each solution matches a standalone solve(b_i)
  /// bit for bit.
  [[nodiscard]] std::vector<Vector> solve_many(
      const std::vector<Vector>& rhs) const;

  /// Determinant of A (product of U diagonal with pivot sign).
  [[nodiscard]] double determinant() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  void factorize();

  Matrix lu_;                      // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int pivot_sign_ = 1;
};

/// One-shot convenience: solves A x = b via LU.
[[nodiscard]] Vector solve_linear_system(Matrix a, const Vector& b);

}  // namespace rascal::linalg

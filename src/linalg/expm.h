// Dense matrix exponential by scaling-and-squaring with a [6/6] Pade
// approximant.  Used as an independent oracle for the uniformization
// transient solver (exp(Q t) row gives the transient distribution),
// practical up to a few hundred states.
#pragma once

#include "linalg/matrix.h"

namespace rascal::linalg {

/// exp(A).  Throws std::invalid_argument for non-square input.
[[nodiscard]] Matrix matrix_exponential(const Matrix& a);

}  // namespace rascal::linalg

// Reusable solver scratch storage.
//
// Batch drivers (uncertainty analysis, parametric sweeps, fault
// campaigns) solve thousands of same-shaped systems in a row.  A
// SolveWorkspace owns the dense elimination scratch, pivot array, and
// vector temporaries those solves need, so a worker performs O(1)
// heap allocations over a whole batch instead of O(samples) matrix
// churn.  Reusing a workspace never changes results: the workspace
// only recycles storage, every solve refills it from scratch and runs
// the identical operation sequence (gated by the src/check/ oracle's
// workspace-vs-fresh bit-identity checks).
//
// A workspace is NOT thread-safe; give each worker its own.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace rascal::linalg {

class SolveWorkspace {
 public:
  /// Dense scratch reshaped to rows x cols and zero-filled, reusing
  /// the existing heap block when capacity allows.
  [[nodiscard]] Matrix& dense(std::size_t rows, std::size_t cols);

  /// Raw dense scratch with whatever shape the last caller left; for
  /// callers that reshape/refill it themselves (e.g. via
  /// Ctmc::write_generator).
  [[nodiscard]] Matrix& dense_storage() noexcept { return dense_; }

  /// Resident LU decomposition: refactor() into it per solve and the
  /// packed-factor storage is reused across the whole batch.
  [[nodiscard]] LuDecomposition& lu() noexcept { return lu_; }

  /// Pivot/permutation scratch of length n (uninitialized contents).
  [[nodiscard]] std::vector<std::size_t>& pivots(std::size_t n);

  /// Vector scratch slot `slot` resized to n and zero-filled.  Slots
  /// are independent buffers; callers that need several concurrent
  /// temporaries use distinct slots.
  [[nodiscard]] Vector& vec(std::size_t slot, std::size_t n);

  static constexpr std::size_t kVectorSlots = 4;

  /// Sparse-path vector scratch: an open-ended pool of independent
  /// slots (Krylov temporaries, preconditioner scratch), each resized
  /// to n and zero-filled on acquisition.  Kept separate from vec()
  /// so the dense and sparse paths never fight over the same slots
  /// when an escalation runs both in one solve.  The pool is a deque,
  /// so acquiring a new slot never invalidates references to slots
  /// handed out earlier in the same solve.
  [[nodiscard]] Vector& sparse_vec(std::size_t slot, std::size_t n);

  /// Krylov basis scratch: `count` vectors each resized to n and
  /// zero-filled; the pool shrinks logically but keeps its heap
  /// blocks, so GMRES restart cycles reuse one allocation.
  [[nodiscard]] std::vector<Vector>& krylov_basis(std::size_t count,
                                                  std::size_t n);

 private:
  Matrix dense_;
  LuDecomposition lu_;
  std::vector<std::size_t> pivots_;
  Vector vectors_[kVectorSlots];
  std::deque<Vector> sparse_vectors_;
  std::vector<Vector> basis_;
};

}  // namespace rascal::linalg

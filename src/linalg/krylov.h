// Sparse Krylov-subspace solvers: GMRES(m) and BiCGStab.
//
// The dense solvers (gth.h, lu.h) hold an n x n Matrix — 8 n^2 bytes
// — which stops being an option around 10^4 states.  The Krylov
// methods here touch A only through CsrMatrix::multiply_into, so a
// million-state k-of-n replication model solves in O(nnz) memory.
//
// Both methods are right-preconditioned (they solve A M^{-1} y = b,
// x = M^{-1} y), so the residual they monitor is the true residual of
// the original system — no preconditioner-dependent stopping
// surprises.  Like every solver in this codebase, the operation
// sequence is deterministic: single-accumulator dot products and
// matvecs, no reductions whose order depends on thread count, so
// repeated solves (and workspace-reusing solves) are bit-identical.
//
// The stationary wrappers solve pi Q = 0, sum(pi) = 1 through the
// normalized augmented system — Q^T with the last balance row
// replaced by the all-ones normalization row, b = e_{n-1} — the exact
// sparse analogue of the dense LU path in ctmc/steady_state.cpp.
#pragma once

#include <cstddef>

#include "linalg/precond.h"
#include "linalg/sparse.h"
#include "linalg/workspace.h"
#include "resil/cancel.h"

namespace rascal::linalg {

struct KrylovOptions {
  /// Total matvec budget across all restarts/iterations.
  std::size_t max_iterations = 20000;

  /// GMRES(m) inner subspace dimension before a restart (ignored by
  /// BiCGStab).  Memory is (restart + 1) basis vectors of length n.
  std::size_t restart = 60;

  /// Convergence: ||b - A x||_2 <= tolerance * ||b||_2.
  double tolerance = 1e-12;

  PrecondKind precond = PrecondKind::kJacobi;

  /// Optional starting iterate (length n); zeros when null.
  const Vector* initial_guess = nullptr;

  /// Cooperative cancellation, polled once per Krylov iteration (every
  /// matvec); fires as `cancelled = true`, never as nonconvergence.
  const resil::CancellationToken* cancel = nullptr;

  /// Optional reusable scratch (basis vectors, Hessenberg storage,
  /// preconditioner temporaries).  Results are bit-identical with and
  /// without one.  Not owned.
  SolveWorkspace* workspace = nullptr;
};

struct KrylovResult {
  Vector x;
  std::size_t iterations = 0;  // matvecs with A
  double residual = 0.0;       // final true ||b - A x||_2
  bool converged = false;
  bool cancelled = false;  // stopped by options.cancel
  bool breakdown = false;  // BiCGStab scalar recurrence broke down
};

/// Restarted GMRES with modified Gram-Schmidt and Givens rotations.
/// Throws std::invalid_argument on shape mismatch and PrecondError
/// when the preconditioner rejects A's pattern.
[[nodiscard]] KrylovResult gmres(const CsrMatrix& a, const Vector& b,
                                 const KrylovOptions& options = {});

/// BiCGStab; a detected scalar breakdown stops the solve with
/// `breakdown = true` (and `converged = false`) rather than producing
/// NaNs.  Same exceptions as gmres().
[[nodiscard]] KrylovResult bicgstab(const CsrMatrix& a, const Vector& b,
                                    const KrylovOptions& options = {});

/// The normalized augmented stationary system for a generator Q (see
/// file comment).  O(nnz + n); the returned matrix has one fully
/// dense row (the normalization row).
[[nodiscard]] CsrMatrix stationary_system(const CsrMatrix& q);

/// Stationary distribution of the CTMC generator Q via GMRES /
/// BiCGStab on the augmented system, started from the uniform
/// distribution; the solution is clamped and normalized exactly like
/// the dense LU path.
[[nodiscard]] KrylovResult gmres_stationary(const CsrMatrix& q,
                                            const KrylovOptions& options = {});
[[nodiscard]] KrylovResult bicgstab_stationary(
    const CsrMatrix& q, const KrylovOptions& options = {});

}  // namespace rascal::linalg

#include "linalg/precond.h"

#include <cmath>

namespace rascal::linalg {

namespace {

void require_square(const CsrMatrix& a, const char* who) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    throw PrecondError("P001", std::string(who) + ": matrix must be square "
                                   "and non-empty (" +
                                   std::to_string(a.rows()) + "x" +
                                   std::to_string(a.cols()) + ")");
  }
}

}  // namespace

const char* precond_name(PrecondKind kind) noexcept {
  switch (kind) {
    case PrecondKind::kNone: return "none";
    case PrecondKind::kJacobi: return "jacobi";
    case PrecondKind::kIlu0: return "ilu0";
  }
  return "unknown";
}

void IdentityPreconditioner::apply(const Vector& r, Vector& z) const {
  z = r;
}

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  require_square(a, "jacobi");
  const std::size_t n = a.rows();
  inv_diag_.assign(n, 0.0);
  const std::vector<std::size_t>& rp = a.row_ptr();
  const std::vector<std::size_t>& ci = a.col_idx();
  const std::vector<double>& vv = a.values();
  for (std::size_t r = 0; r < n; ++r) {
    double d = 0.0;
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) {
        d = vv[k];
        break;
      }
    }
    if (d == 0.0 || !std::isfinite(d)) {
      throw PrecondError("P002", "jacobi: zero or missing diagonal at row " +
                                     std::to_string(r));
    }
    inv_diag_[r] = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const Vector& r, Vector& z) const {
  const std::size_t n = inv_diag_.size();
  z.resize(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] * inv_diag_[i];
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a) : pattern_(&a) {
  require_square(a, "ilu0");
  const std::size_t n = a.rows();
  const std::vector<std::size_t>& rp = a.row_ptr();
  const std::vector<std::size_t>& ci = a.col_idx();

  luval_ = a.values();
  diag_.assign(n, rp[n]);  // sentinel: "no diagonal entry"

  // iw maps column -> position inside the current row (kNone when the
  // column is outside the row's pattern); reset incrementally so the
  // factorization stays O(sum over rows of row-length * work).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> iw(n, kNone);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = rp[i];
    const std::size_t e = rp[i + 1];
    if (b == e) {
      throw PrecondError("P003",
                         "ilu0: empty row " + std::to_string(i) +
                             " (no entries; the pattern cannot be factored)");
    }
    for (std::size_t k = b; k < e; ++k) iw[ci[k]] = k;

    // Eliminate the strictly-lower entries of row i in column order
    // (the row is column-sorted), updating only positions inside the
    // row's own pattern — the defining ILU(0) restriction.
    for (std::size_t k = b; k < e && ci[k] < i; ++k) {
      const std::size_t col = ci[k];
      const std::size_t dk = diag_[col];
      // Row `col` was processed earlier, so its diagonal is known
      // present and nonzero.
      luval_[k] /= luval_[dk];
      const double factor = luval_[k];
      for (std::size_t kk = dk + 1; kk < rp[col + 1]; ++kk) {
        const std::size_t pos = iw[ci[kk]];
        if (pos != kNone) luval_[pos] -= factor * luval_[kk];
      }
    }

    const std::size_t di = iw[i];
    if (di == kNone || luval_[di] == 0.0 || !std::isfinite(luval_[di])) {
      for (std::size_t k = b; k < e; ++k) iw[ci[k]] = kNone;
      throw PrecondError(
          "P004", "ilu0: zero pivot at row " + std::to_string(i) +
                      (di == kNone ? " (diagonal missing from the pattern)"
                                   : " (diagonal eliminated to zero)"));
    }
    diag_[i] = di;
    for (std::size_t k = b; k < e; ++k) iw[ci[k]] = kNone;
  }
}

void Ilu0Preconditioner::apply(const Vector& r, Vector& z) const {
  const CsrMatrix& a = *pattern_;
  const std::size_t n = a.rows();
  const std::vector<std::size_t>& rp = a.row_ptr();
  const std::vector<std::size_t>& ci = a.col_idx();
  z.resize(n);

  // Forward solve L y = r (L unit lower triangular, stored strictly
  // below the diagonal), written into z.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = r[i];
    for (std::size_t k = rp[i]; k < diag_[i]; ++k) {
      acc -= luval_[k] * z[ci[k]];
    }
    z[i] = acc;
  }
  // Backward solve U z = y (U upper triangular including the
  // diagonal).
  for (std::size_t i = n; i-- > 0;) {
    double acc = z[i];
    for (std::size_t k = diag_[i] + 1; k < rp[i + 1]; ++k) {
      acc -= luval_[k] * z[ci[k]];
    }
    z[i] = acc / luval_[diag_[i]];
  }
}

std::unique_ptr<Preconditioner> make_preconditioner(PrecondKind kind,
                                                    const CsrMatrix& a) {
  switch (kind) {
    case PrecondKind::kNone: return std::make_unique<IdentityPreconditioner>();
    case PrecondKind::kJacobi: return std::make_unique<JacobiPreconditioner>(a);
    case PrecondKind::kIlu0: return std::make_unique<Ilu0Preconditioner>(a);
  }
  throw std::invalid_argument("make_preconditioner: unknown kind");
}

}  // namespace rascal::linalg

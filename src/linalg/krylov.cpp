#include "linalg/krylov.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "resil/chaos.h"

namespace rascal::linalg {

namespace {

// Chaos hook `solver-nonconverge@K` (shared with the classic
// iterative solvers): Krylov methods converge on small systems even
// under a harsh iteration cap, so the hook zeroes the budget outright
// — the solve gives up immediately and the escalation cascade runs.
std::size_t chaos_capped_budget(std::size_t max_iterations) {
  if (resil::chaos::enabled() && resil::chaos::tick("solver-nonconverge")) {
    return 0;
  }
  return max_iterations;
}

void require_system(const CsrMatrix& a, const Vector& b, const char* who) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    throw std::invalid_argument(std::string(who) +
                                ": matrix must be square and non-empty");
  }
  if (b.size() != a.rows()) {
    throw std::invalid_argument(std::string(who) +
                                ": right-hand side size mismatch");
  }
}

// Scalar-recurrence breakdown guard: denominators this close to zero
// (or non-finite) would poison the iterate with Inf/NaN.
constexpr double kBreakdownFloor = 1e-280;

bool broke(double denom) {
  return !std::isfinite(denom) || std::abs(denom) < kBreakdownFloor;
}

}  // namespace

KrylovResult gmres(const CsrMatrix& a, const Vector& b,
                   const KrylovOptions& options) {
  require_system(a, b, "gmres");
  const std::size_t n = b.size();

  SolveWorkspace local_ws;
  SolveWorkspace* ws =
      options.workspace != nullptr ? options.workspace : &local_ws;

  KrylovResult result;
  const auto precond = make_preconditioner(options.precond, a);

  Vector x = options.initial_guess != nullptr ? *options.initial_guess
                                              : Vector(n, 0.0);
  if (x.size() != n) {
    throw std::invalid_argument("gmres: initial guess size mismatch");
  }

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  const double target = options.tolerance * bnorm;
  const std::size_t max_it = chaos_capped_budget(options.max_iterations);
  const std::size_t m = std::max<std::size_t>(
      1, std::min<std::size_t>(options.restart, n));
  const std::size_t lead = m + 1;  // Hessenberg leading dim, column-major

  std::vector<Vector>& basis = ws->krylov_basis(m + 1, n);
  Vector& r = ws->sparse_vec(0, n);
  Vector& z = ws->sparse_vec(1, n);
  Vector& w = ws->sparse_vec(2, n);
  Vector& h = ws->sparse_vec(3, lead * m);
  Vector& cs = ws->sparse_vec(4, m);
  Vector& sn = ws->sparse_vec(5, m);
  Vector& g = ws->sparse_vec(6, m + 1);
  Vector& y = ws->sparse_vec(7, m);
  Vector& vy = ws->sparse_vec(8, n);

  a.multiply_into(x, w);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
  double rnorm = norm2(r);
  result.residual = rnorm;
  if (rnorm <= target) {
    result.converged = true;
    result.x = std::move(x);
    return result;
  }

  while (result.iterations < max_it) {
    // --- restart cycle ---
    const double beta = rnorm;
    for (std::size_t i = 0; i < n; ++i) basis[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;
    std::size_t jused = 0;
    bool exact = false;  // happy breakdown: Krylov space exhausted

    for (std::size_t j = 0; j < m && result.iterations < max_it; ++j) {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        result.cancelled = true;
        break;
      }
      precond->apply(basis[j], z);
      a.multiply_into(z, w);
      ++result.iterations;

      // Modified Gram-Schmidt against the current basis.
      for (std::size_t i = 0; i <= j; ++i) {
        const double hij = dot(w, basis[i]);
        h[i + j * lead] = hij;
        const Vector& vi = basis[i];
        for (std::size_t t = 0; t < n; ++t) w[t] -= hij * vi[t];
      }
      const double hj1 = norm2(w);
      h[(j + 1) + j * lead] = hj1;
      if (hj1 != 0.0) {
        for (std::size_t t = 0; t < n; ++t) basis[j + 1][t] = w[t] / hj1;
      }

      // Previously computed Givens rotations applied to column j.
      for (std::size_t i = 0; i < j; ++i) {
        const double h0 = h[i + j * lead];
        const double h1 = h[(i + 1) + j * lead];
        h[i + j * lead] = cs[i] * h0 + sn[i] * h1;
        h[(i + 1) + j * lead] = -sn[i] * h0 + cs[i] * h1;
      }
      // New rotation zeroing the subdiagonal of column j.
      const double h0 = h[j + j * lead];
      const double h1 = h[(j + 1) + j * lead];
      double c = 1.0;
      double s = 0.0;
      if (h1 != 0.0) {
        if (std::abs(h1) > std::abs(h0)) {
          const double t = h0 / h1;
          s = 1.0 / std::sqrt(1.0 + t * t);
          c = t * s;
        } else {
          const double t = h1 / h0;
          c = 1.0 / std::sqrt(1.0 + t * t);
          s = t * c;
        }
      }
      cs[j] = c;
      sn[j] = s;
      h[j + j * lead] = c * h0 + s * h1;
      h[(j + 1) + j * lead] = 0.0;
      const double g0 = g[j];
      g[j] = c * g0;
      g[j + 1] = -s * g0;
      jused = j + 1;

      if (hj1 == 0.0) {
        exact = true;
        break;
      }
      if (std::abs(g[j + 1]) <= target) break;
    }

    if (result.cancelled || jused == 0) break;

    // Back substitution on the rotated (upper-triangular) Hessenberg.
    for (std::size_t ii = jused; ii-- > 0;) {
      double acc = g[ii];
      for (std::size_t jj = ii + 1; jj < jused; ++jj) {
        acc -= h[ii + jj * lead] * y[jj];
      }
      const double hd = h[ii + ii * lead];
      // A zero diagonal only arises on singular systems; skipping the
      // direction keeps the update finite and the residual honest.
      y[ii] = hd != 0.0 ? acc / hd : 0.0;
    }

    // x += M^{-1} (V y): accumulate V y first so the preconditioner
    // is applied once per restart, not once per basis vector.
    std::fill(vy.begin(), vy.end(), 0.0);
    for (std::size_t i = 0; i < jused; ++i) {
      const double yi = y[i];
      const Vector& vi = basis[i];
      for (std::size_t t = 0; t < n; ++t) vy[t] += yi * vi[t];
    }
    precond->apply(vy, z);
    for (std::size_t t = 0; t < n; ++t) x[t] += z[t];

    // Restart decisions use the true residual, not the Givens
    // estimate, so preconditioned round-off cannot fake convergence.
    a.multiply_into(x, w);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
    rnorm = norm2(r);
    result.residual = rnorm;
    if (rnorm <= target) {
      result.converged = true;
      break;
    }
    if (exact) break;  // singular system: restarting rebuilds the same space
  }

  result.x = std::move(x);
  return result;
}

KrylovResult bicgstab(const CsrMatrix& a, const Vector& b,
                      const KrylovOptions& options) {
  require_system(a, b, "bicgstab");
  const std::size_t n = b.size();

  SolveWorkspace local_ws;
  SolveWorkspace* ws =
      options.workspace != nullptr ? options.workspace : &local_ws;

  KrylovResult result;
  const auto precond = make_preconditioner(options.precond, a);

  Vector x = options.initial_guess != nullptr ? *options.initial_guess
                                              : Vector(n, 0.0);
  if (x.size() != n) {
    throw std::invalid_argument("bicgstab: initial guess size mismatch");
  }

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  const double target = options.tolerance * bnorm;
  const std::size_t max_it = chaos_capped_budget(options.max_iterations);

  Vector& r = ws->sparse_vec(0, n);
  Vector& rhat = ws->sparse_vec(1, n);
  Vector& p = ws->sparse_vec(2, n);
  Vector& v = ws->sparse_vec(3, n);
  Vector& s = ws->sparse_vec(4, n);
  Vector& tv = ws->sparse_vec(5, n);
  Vector& phat = ws->sparse_vec(6, n);
  Vector& shat = ws->sparse_vec(7, n);
  Vector& w = ws->sparse_vec(8, n);

  a.multiply_into(x, w);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
  rhat = r;
  double rnorm = norm2(r);
  result.residual = rnorm;
  if (rnorm <= target) {
    result.converged = true;
    result.x = std::move(x);
    return result;
  }

  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;
  bool fresh = true;  // p/v recurrence not yet primed (start or restart)

  while (result.iterations < max_it) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      result.cancelled = true;
      break;
    }
    const double rho_new = dot(rhat, r);
    if (broke(rho_new)) {
      result.breakdown = true;
      break;
    }
    if (fresh) {
      p = r;
      fresh = false;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    precond->apply(p, phat);
    a.multiply_into(phat, v);
    ++result.iterations;
    const double den = dot(rhat, v);
    if (broke(den)) {
      result.breakdown = true;
      break;
    }
    alpha = rho_new / den;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    // Early half-step exit: s already small enough that the omega
    // step (and its possible division by a tiny t'Ht) is unnecessary.
    if (norm2(s) <= target) {
      for (std::size_t i = 0; i < n; ++i) x[i] += alpha * phat[i];
      a.multiply_into(x, w);
      ++result.iterations;
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
      rnorm = norm2(r);
      result.residual = rnorm;
      if (rnorm <= target) {
        result.converged = true;
        break;
      }
      // Recurrence drifted from the true residual: full restart.
      rhat = r;
      rho = 1.0;
      alpha = 1.0;
      omega = 1.0;
      fresh = true;
      continue;
    }

    precond->apply(s, shat);
    a.multiply_into(shat, tv);
    ++result.iterations;
    const double tt = dot(tv, tv);
    if (broke(tt)) {
      result.breakdown = true;
      break;
    }
    omega = dot(tv, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
    }
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * tv[i];
    rho = rho_new;
    rnorm = norm2(r);
    result.residual = rnorm;

    if (rnorm <= target) {
      // Accept only on the true residual; the recurrence can drift.
      a.multiply_into(x, w);
      ++result.iterations;
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
      rnorm = norm2(r);
      result.residual = rnorm;
      if (rnorm <= target) {
        result.converged = true;
        break;
      }
      rhat = r;
      rho = 1.0;
      alpha = 1.0;
      omega = 1.0;
      fresh = true;
      continue;
    }
    if (broke(omega)) {
      // The next beta would divide by omega.
      result.breakdown = true;
      break;
    }
  }

  result.x = std::move(x);
  return result;
}

CsrMatrix stationary_system(const CsrMatrix& q) {
  if (q.rows() != q.cols() || q.rows() == 0) {
    throw std::invalid_argument(
        "stationary_system: generator must be square and non-empty");
  }
  const std::size_t n = q.rows();
  const std::vector<std::size_t>& rp = q.row_ptr();
  const std::vector<std::size_t>& ci = q.col_idx();
  const std::vector<double>& vv = q.values();

  // Counting-sort transpose with output row n-1 (the balance equation
  // being replaced) rerouted to the all-ones normalization row.
  std::vector<std::size_t> a_row_ptr(n + 1, 0);
  for (std::size_t k = 0; k < q.non_zeros(); ++k) {
    if (ci[k] != n - 1) ++a_row_ptr[ci[k] + 1];
  }
  a_row_ptr[n] = n;  // the dense normalization row
  for (std::size_t c = 0; c < n; ++c) a_row_ptr[c + 1] += a_row_ptr[c];

  const std::size_t nnz = a_row_ptr[n];
  std::vector<std::size_t> a_col_idx(nnz);
  std::vector<double> a_values(nnz);
  std::vector<std::size_t> cursor(a_row_ptr.begin(), a_row_ptr.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t c = ci[k];
      if (c == n - 1) continue;
      const std::size_t slot = cursor[c]++;
      a_col_idx[slot] = r;  // increasing r keeps each row column-sorted
      a_values[slot] = vv[k];
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t slot = cursor[n - 1]++;
    a_col_idx[slot] = j;
    a_values[slot] = 1.0;
  }
  return CsrMatrix::from_parts(n, n, std::move(a_row_ptr),
                               std::move(a_col_idx), std::move(a_values));
}

namespace {

KrylovResult solve_stationary(const CsrMatrix& q, const KrylovOptions& options,
                              bool use_gmres) {
  const CsrMatrix a = stationary_system(q);
  const std::size_t n = q.rows();
  Vector b(n, 0.0);
  b[n - 1] = 1.0;
  Vector guess(n, 1.0 / static_cast<double>(n));
  KrylovOptions opts = options;
  if (opts.initial_guess == nullptr) opts.initial_guess = &guess;

  KrylovResult result = use_gmres ? gmres(a, b, opts) : bicgstab(a, b, opts);

  // Mirror the dense LU path: clamp tiny negative round-off, then
  // renormalize (guarded so a diverged iterate is returned as-is).
  double sum = 0.0;
  for (double& pr : result.x) {
    if (pr < 0.0 && pr > -1e-12) pr = 0.0;
    sum += pr;
  }
  if (sum > 0.0 && std::isfinite(sum)) normalize_to_sum_one(result.x);
  return result;
}

}  // namespace

KrylovResult gmres_stationary(const CsrMatrix& q,
                              const KrylovOptions& options) {
  return solve_stationary(q, options, /*use_gmres=*/true);
}

KrylovResult bicgstab_stationary(const CsrMatrix& q,
                                 const KrylovOptions& options) {
  return solve_stationary(q, options, /*use_gmres=*/false);
}

}  // namespace rascal::linalg

#include "linalg/iterative.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "resil/chaos.h"

namespace rascal::linalg {

namespace {

// Cancellation poll cadence: polling the CancellationToken is a
// relaxed atomic load — cheap but not free in a tight solver loop,
// and availability-model sweeps are short.  (No clock is read here;
// wall time stays out of engine code per rascal-wall-clock.)
constexpr std::size_t kCancelCheckStride = 64;

// Chaos hook `solver-nonconverge@K`: force the K-th iterative solve to
// give up almost immediately so the escalation cascade can be tested
// without constructing a genuinely pathological chain.
std::size_t chaos_capped_iterations(std::size_t max_iterations) {
  if (resil::chaos::enabled() && resil::chaos::tick("solver-nonconverge")) {
    return std::min<std::size_t>(max_iterations, 8);
  }
  return max_iterations;
}

// Counting-sort transpose straight from the CSR arrays; O(nnz).  The
// row-order scan leaves each output row column-sorted, so the arrays
// satisfy the from_parts invariants by construction.
CsrMatrix transpose(const CsrMatrix& a) {
  const std::vector<std::size_t>& rp = a.row_ptr();
  const std::vector<std::size_t>& ci = a.col_idx();
  const std::vector<double>& vv = a.values();
  const std::size_t nnz = a.non_zeros();

  std::vector<std::size_t> t_row_ptr(a.cols() + 1, 0);
  for (std::size_t k = 0; k < nnz; ++k) ++t_row_ptr[ci[k] + 1];
  for (std::size_t c = 0; c < a.cols(); ++c) t_row_ptr[c + 1] += t_row_ptr[c];

  std::vector<std::size_t> t_col_idx(nnz);
  std::vector<double> t_values(nnz);
  std::vector<std::size_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t slot = cursor[ci[k]]++;
      t_col_idx[slot] = r;
      t_values[slot] = vv[k];
    }
  }
  return CsrMatrix::from_parts(a.cols(), a.rows(), std::move(t_row_ptr),
                               std::move(t_col_idx), std::move(t_values));
}

double max_exit_rate(const CsrMatrix& q) {
  const std::vector<std::size_t>& rp = q.row_ptr();
  const std::vector<std::size_t>& ci = q.col_idx();
  const std::vector<double>& vv = q.values();
  double lambda = 0.0;
  for (std::size_t r = 0; r < q.rows(); ++r) {
    double exit = 0.0;
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] != r) exit += vv[k];
    }
    lambda = std::max(lambda, exit);
  }
  return lambda;
}

}  // namespace

IterativeResult power_stationary(const CsrMatrix& q,
                                 const IterativeOptions& options) {
  if (q.rows() != q.cols() || q.rows() == 0) {
    throw std::invalid_argument("power_stationary: bad generator shape");
  }
  const std::size_t n = q.rows();
  // Uniformization constant strictly above the max exit rate keeps the
  // DTMC aperiodic.
  const double lambda = max_exit_rate(q) * 1.05 + 1e-12;

  IterativeResult result;
  const std::size_t max_iterations =
      chaos_capped_iterations(options.max_iterations);
  Vector pi(n, 1.0 / static_cast<double>(n));
  Vector piq;   // reused across iterations: one left_multiply scratch
  Vector next;  // reused across iterations: the updated iterate
  for (std::size_t it = 0; it < max_iterations; ++it) {
    if (options.cancel != nullptr && it % kCancelCheckStride == 0 &&
        options.cancel->cancelled()) {
      result.cancelled = true;
      break;
    }
    // next = pi (I + Q/lambda) = pi + (pi Q)/lambda
    q.left_multiply_into(pi, piq);
    next.resize(n);
    for (std::size_t i = 0; i < n; ++i) next[i] = pi[i] + piq[i] / lambda;
    normalize_to_sum_one(next);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      delta = std::max(delta, std::abs(next[i] - pi[i]));
    }
    std::swap(pi, next);
    result.iterations = it + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  q.left_multiply_into(pi, piq);
  result.residual = norm_inf(piq);
  result.pi = std::move(pi);
  return result;
}

IterativeResult gauss_seidel_stationary(const CsrMatrix& q,
                                        const IterativeOptions& options) {
  if (q.rows() != q.cols() || q.rows() == 0) {
    throw std::invalid_argument("gauss_seidel_stationary: bad shape");
  }
  const std::size_t n = q.rows();
  const CsrMatrix qt = transpose(q);  // row j of qt = column j of q

  // Exit rates (used as the diagonal): exit_j = sum_{c != j} q(j, c).
  Vector exit(n, 0.0);
  {
    const std::vector<std::size_t>& rp = q.row_ptr();
    const std::vector<std::size_t>& ci = q.col_idx();
    const std::vector<double>& vv = q.values();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
        if (ci[k] != r) exit[r] += vv[k];
      }
    }
  }

  IterativeResult result;
  const std::size_t max_iterations =
      chaos_capped_iterations(options.max_iterations);
  // Raw CSR arrays of the transpose: the inner sweep below must not
  // allocate (qt.row(j) built a fresh vector per state per sweep).
  const std::size_t* t_rp = qt.row_ptr().data();
  const std::size_t* t_ci = qt.col_idx().data();
  const double* t_vv = qt.values().data();

  Vector pi(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iterations; ++it) {
    if (options.cancel != nullptr && it % kCancelCheckStride == 0 &&
        options.cancel->cancelled()) {
      result.cancelled = true;
      break;
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (exit[j] <= 0.0) {
        throw std::domain_error(
            "gauss_seidel_stationary: absorbing state has no stationary "
            "balance equation");
      }
      double inflow = 0.0;
      const std::size_t end = t_rp[j + 1];
      for (std::size_t k = t_rp[j]; k < end; ++k) {
        const std::size_t i = t_ci[k];
        if (i != j) inflow += pi[i] * t_vv[k];
      }
      const double updated = inflow / exit[j];
      delta = std::max(delta, std::abs(updated - pi[j]));
      pi[j] = updated;
    }
    normalize_to_sum_one(pi);
    result.iterations = it + 1;
    if (delta < options.tolerance * norm_inf(pi)) {
      result.converged = true;
      break;
    }
  }
  Vector residual_vec;
  q.left_multiply_into(pi, residual_vec);
  result.residual = norm_inf(residual_vec);
  result.pi = std::move(pi);
  return result;
}

}  // namespace rascal::linalg

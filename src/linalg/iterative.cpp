#include "linalg/iterative.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "resil/chaos.h"

namespace rascal::linalg {

namespace {

// Cancellation poll cadence: steady_clock reads are cheap but not
// free, and availability-model sweeps are short.
constexpr std::size_t kCancelCheckStride = 64;

// Chaos hook `solver-nonconverge@K`: force the K-th iterative solve to
// give up almost immediately so the escalation cascade can be tested
// without constructing a genuinely pathological chain.
std::size_t chaos_capped_iterations(std::size_t max_iterations) {
  if (resil::chaos::enabled() && resil::chaos::tick("solver-nonconverge")) {
    return std::min<std::size_t>(max_iterations, 8);
  }
  return max_iterations;
}

// Transpose a CSR matrix by re-assembling from triplets; O(nnz log nnz).
CsrMatrix transpose(const CsrMatrix& a) {
  std::vector<Triplet> triplets;
  triplets.reserve(a.non_zeros());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (const auto& [c, v] : a.row(r)) triplets.push_back({c, r, v});
  }
  return CsrMatrix(a.cols(), a.rows(), triplets);
}

double max_exit_rate(const CsrMatrix& q) {
  double lambda = 0.0;
  for (std::size_t r = 0; r < q.rows(); ++r) {
    double exit = 0.0;
    for (const auto& [c, v] : q.row(r)) {
      if (c != r) exit += v;
    }
    lambda = std::max(lambda, exit);
  }
  return lambda;
}

}  // namespace

IterativeResult power_stationary(const CsrMatrix& q,
                                 const IterativeOptions& options) {
  if (q.rows() != q.cols() || q.rows() == 0) {
    throw std::invalid_argument("power_stationary: bad generator shape");
  }
  const std::size_t n = q.rows();
  // Uniformization constant strictly above the max exit rate keeps the
  // DTMC aperiodic.
  const double lambda = max_exit_rate(q) * 1.05 + 1e-12;

  IterativeResult result;
  const std::size_t max_iterations =
      chaos_capped_iterations(options.max_iterations);
  Vector pi(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iterations; ++it) {
    if (options.cancel != nullptr && it % kCancelCheckStride == 0 &&
        options.cancel->cancelled()) {
      result.cancelled = true;
      break;
    }
    // next = pi (I + Q/lambda) = pi + (pi Q)/lambda
    Vector piq = q.left_multiply(pi);
    Vector next(n);
    for (std::size_t i = 0; i < n; ++i) next[i] = pi[i] + piq[i] / lambda;
    normalize_to_sum_one(next);
    const double delta = norm_inf(subtract(next, pi));
    pi = std::move(next);
    result.iterations = it + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.residual = norm_inf(q.left_multiply(pi));
  result.pi = std::move(pi);
  return result;
}

IterativeResult gauss_seidel_stationary(const CsrMatrix& q,
                                        const IterativeOptions& options) {
  if (q.rows() != q.cols() || q.rows() == 0) {
    throw std::invalid_argument("gauss_seidel_stationary: bad shape");
  }
  const std::size_t n = q.rows();
  const CsrMatrix qt = transpose(q);  // row j of qt = column j of q

  // Exit rates (used as the diagonal): exit_j = sum_{c != j} q(j, c).
  Vector exit(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& [c, v] : q.row(r)) {
      if (c != r) exit[r] += v;
    }
  }

  IterativeResult result;
  const std::size_t max_iterations =
      chaos_capped_iterations(options.max_iterations);
  Vector pi(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iterations; ++it) {
    if (options.cancel != nullptr && it % kCancelCheckStride == 0 &&
        options.cancel->cancelled()) {
      result.cancelled = true;
      break;
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (exit[j] <= 0.0) {
        throw std::domain_error(
            "gauss_seidel_stationary: absorbing state has no stationary "
            "balance equation");
      }
      double inflow = 0.0;
      for (const auto& [i, v] : qt.row(j)) {
        if (i != j) inflow += pi[i] * v;
      }
      const double updated = inflow / exit[j];
      delta = std::max(delta, std::abs(updated - pi[j]));
      pi[j] = updated;
    }
    normalize_to_sum_one(pi);
    result.iterations = it + 1;
    if (delta < options.tolerance * norm_inf(pi)) {
      result.converged = true;
      break;
    }
  }
  result.residual = norm_inf(q.left_multiply(pi));
  result.pi = std::move(pi);
  return result;
}

}  // namespace rascal::linalg

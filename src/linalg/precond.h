// Preconditioners for the sparse Krylov solvers (krylov.h).
//
// A preconditioner M approximates A so that M^{-1} r is cheap to
// apply; GMRES/BiCGStab converge in far fewer matvecs on M^{-1}A-like
// systems than on A itself.  Two classic choices are provided:
//
//  - Jacobi: M = diag(A).  Free to build, helps when the rows of A
//    are badly scaled (an availability generator mixes rates spanning
//    many orders of magnitude with a unit normalization row).
//  - ILU(0): incomplete LU restricted to the sparsity pattern of A.
//    Much stronger on the stiff, nearly-triangular generators that
//    k-of-n replication models produce; costs one extra copy of the
//    value array.
//
// Construction validates the pattern and rejects structurally
// unusable matrices with a PrecondError carrying a stable lint-style
// code (catalogued on PrecondError below) instead of dividing by
// zero at apply time.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/sparse.h"
#include "resil/retry.h"

namespace rascal::linalg {

enum class PrecondKind {
  kNone,    // identity: plain (un)preconditioned Krylov
  kJacobi,  // diagonal scaling
  kIlu0,    // incomplete LU on the pattern of A
};

[[nodiscard]] const char* precond_name(PrecondKind kind) noexcept;

/// Structural rejection during preconditioner construction.  Stable
/// diagnostic codes, rendered as "[Pnnn] message":
///   P001  matrix is not square
///   P002  jacobi: zero or missing diagonal entry
///   P003  ilu0: empty row (state with no entries at all)
///   P004  ilu0: zero pivot (missing diagonal, or eliminated to zero)
class PrecondError : public std::invalid_argument,
                     public resil::ErrorClassTag {
 public:
  PrecondError(std::string code, const std::string& message)
      : std::invalid_argument("[" + code + "] " + message),
        code_(std::move(code)) {}

  [[nodiscard]] const std::string& code() const noexcept { return code_; }

  /// Retryable: the fallback ladder downgrades the preconditioner
  /// (ilu0 -> jacobi -> none) instead of failing the request.
  [[nodiscard]] resil::ErrorClass error_class() const noexcept override {
    return resil::ErrorClass::kPrecond;
  }

 private:
  std::string code_;
};

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z = M^{-1} r (z is resized; r and z may not alias).  The
  /// operation sequence is fixed per construction, so repeated
  /// applies are bit-identical.
  virtual void apply(const Vector& r, Vector& z) const = 0;

  /// Heap bytes held by the factorization, for the sparse-vs-dense
  /// memory accounting asserted in tests.
  [[nodiscard]] virtual std::size_t memory_bytes() const noexcept = 0;
};

/// M = I; lets the solvers run one unconditional code path.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vector& r, Vector& z) const override;
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return 0;
  }
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  /// Throws PrecondError [P001]/[P002] (see above).
  explicit JacobiPreconditioner(const CsrMatrix& a);

  void apply(const Vector& r, Vector& z) const override;
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return inv_diag_.capacity() * sizeof(double);
  }

 private:
  Vector inv_diag_;
};

/// ILU(0): L and U share A's sparsity pattern (no fill-in), stored as
/// one value array parallel to A's col_idx.  Holds a pointer to A for
/// the pattern — A must outlive the preconditioner (both live inside
/// a single solve in practice).
class Ilu0Preconditioner final : public Preconditioner {
 public:
  /// Throws PrecondError [P001]/[P003]/[P004] (see above).
  explicit Ilu0Preconditioner(const CsrMatrix& a);

  void apply(const Vector& r, Vector& z) const override;
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return luval_.capacity() * sizeof(double) +
           diag_.capacity() * sizeof(std::size_t);
  }

 private:
  const CsrMatrix* pattern_;
  std::vector<double> luval_;      // L (unit lower) and U factors in-pattern
  std::vector<std::size_t> diag_;  // index of the diagonal entry per row
};

/// Factory used by the solvers; construction may throw PrecondError.
[[nodiscard]] std::unique_ptr<Preconditioner> make_preconditioner(
    PrecondKind kind, const CsrMatrix& a);

}  // namespace rascal::linalg

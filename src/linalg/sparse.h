// Compressed sparse row (CSR) matrix for large CTMC state spaces.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace rascal::linalg {

/// Coordinate-format entry used while assembling a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix.  Duplicate (row, col) triplets are summed
/// during construction, matching the usual assembly semantics.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets.  Throws std::invalid_argument when an index
  /// is out of range.  Assembly is a counting sort straight into the
  /// CSR arrays — the triplet list is never copied or reordered.
  CsrMatrix(std::size_t rows, std::size_t cols,
            const std::vector<Triplet>& triplets);

  /// Rvalue convenience; same counting-sort build (no copy either way).
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet>&& triplets);

  /// Adopts pre-built CSR arrays without any triplet round trip.  Rows
  /// must be column-sorted with unique columns; throws
  /// std::invalid_argument when the arrays are inconsistent.
  [[nodiscard]] static CsrMatrix from_parts(std::size_t rows,
                                            std::size_t cols,
                                            std::vector<std::size_t> row_ptr,
                                            std::vector<std::size_t> col_idx,
                                            std::vector<double> values);

  [[nodiscard]] static CsrMatrix from_dense(const Matrix& m,
                                            double drop_below = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t non_zeros() const noexcept {
    return values_.size();
  }

  /// y = A x.  Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// y = A x into caller-owned storage (y is resized; x and y may not
  /// alias).  Same accumulation order as multiply().
  void multiply_into(const Vector& x, Vector& y) const;

  /// y = x^T A.  Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Vector left_multiply(const Vector& x) const;

  /// y = x^T A into caller-owned storage (y is resized; x and y may
  /// not alias).  Same accumulation order as left_multiply().
  void left_multiply_into(const Vector& x, Vector& y) const;

  /// Value at (r, c); zero when not stored.  Bounds-checked.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix to_dense() const;

  /// Row r as (col, value) pairs, ordered by column.
  [[nodiscard]] std::vector<std::pair<std::size_t, double>> row(
      std::size_t r) const;

  /// Raw CSR arrays for allocation-free iteration: row r occupies
  /// [row_ptr()[r], row_ptr()[r+1]) in col_idx()/values().
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  void build(const std::vector<Triplet>& triplets);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace rascal::linalg

// Iterative stationary-distribution solvers for large chains.
#pragma once

#include <cstddef>
#include <optional>

#include "linalg/sparse.h"
#include "resil/cancel.h"

namespace rascal::linalg {

struct IterativeOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-13;  // infinity-norm change per sweep
  /// Optional cooperative-cancellation token, polled every few dozen
  /// sweeps.  When it fires the solver stops early with
  /// `cancelled = true` (and `converged = false`).
  const resil::CancellationToken* cancel = nullptr;
};

struct IterativeResult {
  Vector pi;
  std::size_t iterations = 0;
  double residual = 0.0;
  bool converged = false;
  bool cancelled = false;  // stopped by options.cancel, not tolerance
};

/// Power iteration on the uniformized DTMC P = I + Q/Lambda, where
/// Lambda is slightly larger than the maximum exit rate.  Q is a CTMC
/// generator in CSR form (diagonal must be present and equal to the
/// negative row sum).  Returns the stationary distribution.
[[nodiscard]] IterativeResult power_stationary(
    const CsrMatrix& q, const IterativeOptions& options = {});

/// Gauss-Seidel sweeps on pi Q = 0 with normalization after each
/// sweep.  Faster than power iteration on stiff availability models.
[[nodiscard]] IterativeResult gauss_seidel_stationary(
    const CsrMatrix& q, const IterativeOptions& options = {});

}  // namespace rascal::linalg

#include "linalg/lu.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rascal::linalg {

namespace {
constexpr double kSingularThreshold = 1e-300;
}  // namespace

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (!lu_.square()) {
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below k.
    std::size_t pivot_row = k;
    double pivot_abs = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > pivot_abs) {
        pivot_abs = v;
        pivot_row = r;
      }
    }
    if (pivot_abs < kSingularThreshold) {
      throw std::domain_error("LuDecomposition: matrix is singular");
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::solve: size mismatch");
  }
  // Forward substitution with permuted rhs (L has unit diagonal).
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * y[c];
    y[r] = acc;
  }
  // Back substitution.
  Vector x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) {
    throw std::invalid_argument("LuDecomposition::solve: size mismatch");
  }
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve_linear_system(Matrix a, const Vector& b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace rascal::linalg

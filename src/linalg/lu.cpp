#include "linalg/lu.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rascal::linalg {

namespace {
constexpr double kSingularThreshold = 1e-300;
}  // namespace

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  factorize();
}

void LuDecomposition::refactor(const Matrix& a) {
  lu_ = a;  // vector copy-assignment reuses the existing heap block
  factorize();
}

void LuDecomposition::refactor(Matrix&& a) {
  lu_ = std::move(a);
  factorize();
}

void LuDecomposition::factorize() {
  if (!lu_.square()) {
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  pivot_sign_ = 1;
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below k.
    std::size_t pivot_row = k;
    double pivot_abs = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > pivot_abs) {
        pivot_abs = v;
        pivot_row = r;
      }
    }
    if (pivot_abs < kSingularThreshold) {
      throw std::domain_error("LuDecomposition: matrix is singular");
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(k, k);
    const double* row_k = &lu_(k, 0);
    for (std::size_t r = k + 1; r < n; ++r) {
      double* row_r = &lu_(r, 0);
      const double factor = row_r[k] / pivot;
      row_r[k] = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        row_r[c] -= factor * row_k[c];
      }
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  Vector x;
  solve_into(b, x);
  return x;
}

void LuDecomposition::solve_into(const Vector& b, Vector& x) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::solve: size mismatch");
  }
  // Forward substitution with permuted rhs (L has unit diagonal),
  // writing the intermediate y into x so no scratch vector is needed:
  // position r only reads y[c] for c < r, which is already final.
  const double* lu = lu_.data().data();
  x.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    const double* row = lu + r * n;
    for (std::size_t c = 0; c < r; ++c) acc -= row[c] * x[c];
    x[r] = acc;
  }
  // Back substitution, in place over the forward result.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    const double* row = lu + ri * n;
    for (std::size_t c = ri + 1; c < n; ++c) acc -= row[c] * x[c];
    x[ri] = acc / row[ri];
  }
}

std::vector<Vector> LuDecomposition::solve_many(
    const std::vector<Vector>& rhs) const {
  std::vector<Vector> out(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) solve_into(rhs[i], out[i]);
  return out;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) {
    throw std::invalid_argument("LuDecomposition::solve: size mismatch");
  }
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve_linear_system(Matrix a, const Vector& b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace rascal::linalg

#include "linalg/workspace.h"

#include <stdexcept>

namespace rascal::linalg {

Matrix& SolveWorkspace::dense(std::size_t rows, std::size_t cols) {
  dense_.reshape(rows, cols, 0.0);
  return dense_;
}

std::vector<std::size_t>& SolveWorkspace::pivots(std::size_t n) {
  pivots_.resize(n);
  return pivots_;
}

Vector& SolveWorkspace::vec(std::size_t slot, std::size_t n) {
  if (slot >= kVectorSlots) {
    throw std::out_of_range("SolveWorkspace::vec: bad slot");
  }
  Vector& v = vectors_[slot];
  v.assign(n, 0.0);
  return v;
}

}  // namespace rascal::linalg

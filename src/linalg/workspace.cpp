#include "linalg/workspace.h"

#include <stdexcept>

namespace rascal::linalg {

Matrix& SolveWorkspace::dense(std::size_t rows, std::size_t cols) {
  dense_.reshape(rows, cols, 0.0);
  return dense_;
}

std::vector<std::size_t>& SolveWorkspace::pivots(std::size_t n) {
  pivots_.resize(n);
  return pivots_;
}

Vector& SolveWorkspace::vec(std::size_t slot, std::size_t n) {
  if (slot >= kVectorSlots) {
    throw std::out_of_range("SolveWorkspace::vec: bad slot");
  }
  Vector& v = vectors_[slot];
  v.assign(n, 0.0);
  return v;
}

Vector& SolveWorkspace::sparse_vec(std::size_t slot, std::size_t n) {
  if (slot >= sparse_vectors_.size()) sparse_vectors_.resize(slot + 1);
  Vector& v = sparse_vectors_[slot];
  v.assign(n, 0.0);
  return v;
}

std::vector<Vector>& SolveWorkspace::krylov_basis(std::size_t count,
                                                  std::size_t n) {
  if (basis_.size() < count) basis_.resize(count);
  for (std::size_t i = 0; i < count; ++i) basis_[i].assign(n, 0.0);
  return basis_;
}

}  // namespace rascal::linalg

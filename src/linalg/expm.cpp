#include "linalg/expm.h"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.h"

namespace rascal::linalg {

namespace {

Matrix add_scaled(const Matrix& a, const Matrix& b, double sb) {
  Matrix out = a;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) += sb * b(r, c);
  }
  return out;
}

double one_norm(const Matrix& a) {
  double best = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double col = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) col += std::abs(a(r, c));
    best = std::max(best, col);
  }
  return best;
}

}  // namespace

Matrix matrix_exponential(const Matrix& a) {
  if (!a.square()) {
    throw std::invalid_argument("matrix_exponential: matrix must be square");
  }
  const std::size_t n = a.rows();

  // Scale so ||A/2^s|| <= 0.5, apply Pade, then square s times.
  const double norm = one_norm(a);
  int s = 0;
  if (norm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
  }
  const double scale = std::pow(2.0, -s);
  Matrix x(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) x(r, c) = a(r, c) * scale;
  }

  // [6/6] Pade: N = sum c_k X^k, D = sum (-1)^k c_k X^k, exp ~ D^-1 N.
  static constexpr double kCoeff[] = {1.0,
                                      0.5,
                                      5.0 / 44.0,
                                      1.0 / 66.0,
                                      1.0 / 792.0,
                                      1.0 / 15840.0,
                                      1.0 / 665280.0};
  Matrix power = Matrix::identity(n);
  Matrix numerator = Matrix::identity(n);
  Matrix denominator = Matrix::identity(n);
  for (int k = 1; k <= 6; ++k) {
    power = power.multiply(x);
    numerator = add_scaled(numerator, power, kCoeff[k]);
    denominator =
        add_scaled(denominator, power, (k % 2 == 0 ? 1.0 : -1.0) * kCoeff[k]);
  }
  Matrix result = LuDecomposition(std::move(denominator)).solve(numerator);
  for (int i = 0; i < s; ++i) result = result.multiply(result);
  return result;
}

}  // namespace rascal::linalg

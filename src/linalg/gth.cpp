#include "linalg/gth.h"

#include <stdexcept>

namespace rascal::linalg {

void gth_stationary_in(Matrix& q, Vector& pi) {
  if (!q.square()) {
    throw std::invalid_argument("gth_stationary: matrix must be square");
  }
  const std::size_t n = q.rows();
  if (n == 0) {
    throw std::invalid_argument("gth_stationary: empty matrix");
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r != c && q(r, c) < 0.0) {
        throw std::invalid_argument(
            "gth_stationary: negative off-diagonal rate");
      }
    }
  }
  if (n == 1) {
    pi.assign(1, 1.0);
    return;
  }

  // Elimination phase: censor states n-1, n-2, ..., 1 in turn.
  // After eliminating state k, transitions i->j (i,j < k) gain the
  // contribution of paths through k.  Only additions of nonnegative
  // numbers occur.  Indexed accesses, not hoisted row pointers: the
  // single-base-array form lets the compiler vectorize the update
  // (hand-hoisted pointers measurably pessimize it), and the
  // operation order is part of the bit-identity contract.
  for (std::size_t k = n - 1; k >= 1; --k) {
    double departure = 0.0;  // total rate out of k to states < k
    for (std::size_t c = 0; c < k; ++c) departure += q(k, c);
    if (departure <= 0.0) {
      throw std::domain_error(
          "gth_stationary: zero pivot (chain is reducible)");
    }
    for (std::size_t i = 0; i < k; ++i) {
      const double rate_ik = q(i, k);
      if (rate_ik == 0.0) continue;
      const double scale = rate_ik / departure;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        q(i, j) += scale * q(k, j);
      }
    }
  }

  // Back-substitution: pi_0 = 1, then unfold the censored states.
  pi.assign(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double departure = 0.0;
    for (std::size_t c = 0; c < k; ++c) departure += q(k, c);
    double inflow = 0.0;
    for (std::size_t i = 0; i < k; ++i) inflow += pi[i] * q(i, k);
    pi[k] = inflow / departure;
  }
  normalize_to_sum_one(pi);
}

Vector gth_stationary(Matrix q) {
  Vector pi;
  gth_stationary_in(q, pi);
  return pi;
}

Vector gth_stationary_dtmc(const Matrix& p) {
  if (!p.square()) {
    throw std::invalid_argument("gth_stationary_dtmc: matrix must be square");
  }
  // P - I is a valid generator for GTH (diagonal is ignored anyway).
  Matrix q = p;
  for (std::size_t i = 0; i < q.rows(); ++i) q(i, i) -= 1.0;
  return gth_stationary(std::move(q));
}

}  // namespace rascal::linalg

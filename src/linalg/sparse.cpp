#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rascal::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     const std::vector<Triplet>& triplets)
    : rows_(rows), cols_(cols) {
  build(triplets);
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet>&& triplets)
    : rows_(rows), cols_(cols) {
  build(triplets);
}

void CsrMatrix::build(const std::vector<Triplet>& triplets) {
  // One pass validates indices and bucket-counts entries per row; the
  // triplet list itself is never copied or sorted.
  row_ptr_.assign(rows_ + 1, 0);
  for (const Triplet& t : triplets) {
    if (t.row >= rows_ || t.col >= cols_) {
      throw std::invalid_argument("CsrMatrix: triplet index out of range");
    }
    ++row_ptr_[t.row + 1];
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];

  // Counting-sort scatter into the CSR arrays, ordered by row with
  // input order preserved inside each row.
  col_idx_.resize(triplets.size());
  values_.resize(triplets.size());
  std::vector<std::size_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  for (const Triplet& t : triplets) {
    const std::size_t k = cursor[t.row]++;
    col_idx_[k] = t.col;
    values_[k] = t.value;
  }

  // Order each row by column.  Already-sorted rows (the common CTMC
  // case) are detected in O(row length) and left alone.  Short
  // unsorted rows use a stable insertion sort; long ones — e.g. a
  // fully-dense normalization row assembled in arbitrary order, where
  // insertion sort would go quadratic — use a stable permutation
  // sort.  Both keep input order among duplicate columns, so the
  // merge below sums duplicates in the same order either way.
  constexpr std::size_t kInsertionSortMax = 32;
  std::vector<std::size_t> perm;
  std::vector<std::size_t> tmp_cols;
  std::vector<double> tmp_vals;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t b = row_ptr_[r];
    const std::size_t e = row_ptr_[r + 1];
    bool sorted = true;
    for (std::size_t i = b + 1; i < e; ++i) {
      if (col_idx_[i - 1] > col_idx_[i]) {
        sorted = false;
        break;
      }
    }
    if (sorted) continue;
    if (e - b <= kInsertionSortMax) {
      for (std::size_t i = b + 1; i < e; ++i) {
        const std::size_t c = col_idx_[i];
        const double v = values_[i];
        std::size_t j = i;
        while (j > b && col_idx_[j - 1] > c) {
          col_idx_[j] = col_idx_[j - 1];
          values_[j] = values_[j - 1];
          --j;
        }
        col_idx_[j] = c;
        values_[j] = v;
      }
    } else {
      perm.resize(e - b);
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::size_t a, std::size_t z) {
                         return col_idx_[b + a] < col_idx_[b + z];
                       });
      tmp_cols.assign(col_idx_.begin() + static_cast<std::ptrdiff_t>(b),
                      col_idx_.begin() + static_cast<std::ptrdiff_t>(e));
      tmp_vals.assign(values_.begin() + static_cast<std::ptrdiff_t>(b),
                      values_.begin() + static_cast<std::ptrdiff_t>(e));
      for (std::size_t i = 0; i < perm.size(); ++i) {
        col_idx_[b + i] = tmp_cols[perm[i]];
        values_[b + i] = tmp_vals[perm[i]];
      }
    }
  }

  // Compact in place: sum duplicate (row, col) entries, drop zero sums.
  std::size_t out = 0;
  std::size_t b = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t e = row_ptr_[r + 1];
    std::size_t i = b;
    while (i < e) {
      const std::size_t c = col_idx_[i];
      double sum = 0.0;
      while (i < e && col_idx_[i] == c) {
        sum += values_[i];
        ++i;
      }
      if (sum != 0.0) {
        col_idx_[out] = c;
        values_[out] = sum;
        ++out;
      }
    }
    b = e;
    row_ptr_[r + 1] = out;
  }
  col_idx_.resize(out);
  values_.resize(out);
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::size_t> row_ptr,
                                std::vector<std::size_t> col_idx,
                                std::vector<double> values) {
  if (row_ptr.size() != rows + 1 || row_ptr.front() != 0 ||
      row_ptr.back() != col_idx.size() || col_idx.size() != values.size()) {
    throw std::invalid_argument("CsrMatrix::from_parts: inconsistent arrays");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      throw std::invalid_argument(
          "CsrMatrix::from_parts: row_ptr not monotone");
    }
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] >= cols ||
          (k > row_ptr[r] && col_idx[k - 1] >= col_idx[k])) {
        throw std::invalid_argument(
            "CsrMatrix::from_parts: columns must be sorted, unique and in "
            "range");
      }
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::from_dense(const Matrix& m, double drop_below) {
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double v = m(r, c);
      if (std::abs(v) > drop_below) triplets.push_back({r, c, v});
    }
  }
  return CsrMatrix(m.rows(), m.cols(), triplets);
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply_into(x, y);
  return y;
}

void CsrMatrix::multiply_into(const Vector& x, Vector& y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::multiply: dimension mismatch");
  }
  y.assign(rows_, 0.0);
  const std::size_t* rp = row_ptr_.data();
  const std::size_t* ci = col_idx_.data();
  const double* vv = values_.data();
  const double* xp = x.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    // Single sequential accumulator: the summation order is part of the
    // bit-identity contract, so no multi-accumulator unrolling here.
    double acc = 0.0;
    const std::size_t end = rp[r + 1];
    for (std::size_t k = rp[r]; k < end; ++k) {
      acc += vv[k] * xp[ci[k]];
    }
    y[r] = acc;
  }
}

Vector CsrMatrix::left_multiply(const Vector& x) const {
  Vector y;
  left_multiply_into(x, y);
  return y;
}

void CsrMatrix::left_multiply_into(const Vector& x, Vector& y) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "CsrMatrix::left_multiply: dimension mismatch");
  }
  y.assign(cols_, 0.0);
  const std::size_t* rp = row_ptr_.data();
  const std::size_t* ci = col_idx_.data();
  const double* vv = values_.data();
  double* yp = y.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const std::size_t end = rp[r + 1];
    for (std::size_t k = rp[r]; k < end; ++k) {
      yp[ci[k]] += xr * vv[k];
    }
  }
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("CsrMatrix::at");
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    if (col_idx_[k] == c) return values_[k];
  }
  return 0.0;
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m(r, col_idx_[k]) = values_[k];
    }
  }
  return m;
}

std::vector<std::pair<std::size_t, double>> CsrMatrix::row(
    std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("CsrMatrix::row");
  std::vector<std::pair<std::size_t, double>> out;
  out.reserve(row_ptr_[r + 1] - row_ptr_[r]);
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    out.emplace_back(col_idx_[k], values_[k]);
  }
  return out;
}

}  // namespace rascal::linalg

#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rascal::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     const std::vector<Triplet>& triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::invalid_argument("CsrMatrix: triplet index out of range");
    }
  }
  std::vector<Triplet> sorted = triplets;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(sorted.size());
  values_.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size();) {
    const std::size_t r = sorted[i].row;
    const std::size_t c = sorted[i].col;
    double sum = 0.0;
    while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
      sum += sorted[i].value;
      ++i;
    }
    if (sum != 0.0) {
      col_idx_.push_back(c);
      values_.push_back(sum);
      ++row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

CsrMatrix CsrMatrix::from_dense(const Matrix& m, double drop_below) {
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double v = m(r, c);
      if (std::abs(v) > drop_below) triplets.push_back({r, c, v});
    }
  }
  return CsrMatrix(m.rows(), m.cols(), triplets);
}

Vector CsrMatrix::multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::multiply: dimension mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Vector CsrMatrix::left_multiply(const Vector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "CsrMatrix::left_multiply: dimension mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += xr * values_[k];
    }
  }
  return y;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("CsrMatrix::at");
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    if (col_idx_[k] == c) return values_[k];
  }
  return 0.0;
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m(r, col_idx_[k]) = values_[k];
    }
  }
  return m;
}

std::vector<std::pair<std::size_t, double>> CsrMatrix::row(
    std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("CsrMatrix::row");
  std::vector<std::pair<std::size_t, double>> out;
  out.reserve(row_ptr_[r + 1] - row_ptr_[r]);
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    out.emplace_back(col_idx_[k], values_[k]);
  }
  return out;
}

}  // namespace rascal::linalg

// Dense row-major matrix of doubles plus small vector utilities.
//
// This is deliberately a minimal numerical kernel: availability models
// in this library rarely exceed a few thousand states, so a simple
// contiguous dense matrix with O(n^3) direct solvers is the right
// trade-off for the default path.  Larger state spaces use the sparse
// CSR representation in sparse.h.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace rascal::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix.  Indices are checked in at() and unchecked
/// in operator().
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have
  /// equal length.  Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Reshapes to rows x cols and refills every entry with `fill`,
  /// reusing the existing heap block when capacity allows.  The
  /// workhorse of SolveWorkspace reuse: repeated same-shape solves
  /// never reallocate.
  void reshape(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Raw storage, row-major.
  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

  [[nodiscard]] Matrix transposed() const;

  /// Matrix-vector product y = A x.  Throws on dimension mismatch.
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// Row-vector product y = x^T A (useful for pi Q).  Throws on
  /// dimension mismatch.
  [[nodiscard]] Vector left_multiply(const Vector& x) const;

  /// Matrix product.  Throws on dimension mismatch.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// Max-absolute-entry norm.
  [[nodiscard]] double max_abs() const noexcept;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& v) noexcept;

/// Sum of absolute values.
[[nodiscard]] double norm1(const Vector& v) noexcept;

/// Max absolute value.
[[nodiscard]] double norm_inf(const Vector& v) noexcept;

/// Dot product; throws std::invalid_argument on length mismatch.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Componentwise a - b; throws std::invalid_argument on length mismatch.
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

/// Scales v so its entries sum to 1.  Throws std::domain_error when the
/// sum is zero or not finite.
void normalize_to_sum_one(Vector& v);

}  // namespace rascal::linalg

// Unit conventions and conversion helpers.
//
// The library follows the paper's convention: all rates are per hour
// and all durations are in hours (e.g. "La_hadb = 2/8760" is two
// failures per year expressed per hour).  These helpers keep call
// sites readable and conversion mistakes out of the models.
#pragma once

namespace rascal::core {

inline constexpr double kHoursPerYear = 8760.0;
inline constexpr double kMinutesPerYear = kHoursPerYear * 60.0;

/// Rate expressed as events per year -> events per hour.
[[nodiscard]] constexpr double per_year(double events) {
  return events / kHoursPerYear;
}

/// Durations -> hours.
[[nodiscard]] constexpr double hours(double h) { return h; }
[[nodiscard]] constexpr double minutes(double m) { return m / 60.0; }
[[nodiscard]] constexpr double seconds(double s) { return s / 3600.0; }
[[nodiscard]] constexpr double days(double d) { return d * 24.0; }
[[nodiscard]] constexpr double years(double y) { return y * kHoursPerYear; }

/// Steady-state unavailability -> expected yearly downtime in minutes.
[[nodiscard]] constexpr double downtime_minutes_per_year(
    double unavailability) {
  return unavailability * kMinutesPerYear;
}

/// Availability from yearly downtime in minutes.
[[nodiscard]] constexpr double availability_from_downtime_minutes(
    double minutes_per_year) {
  return 1.0 - minutes_per_year / kMinutesPerYear;
}

}  // namespace rascal::core

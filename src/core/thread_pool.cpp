#include "core/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/obs.h"

namespace rascal::core {

namespace {

std::size_t env_threads() {
  const char* text = std::getenv("RASCAL_THREADS");
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  return static_cast<std::size_t>(value);
}

// Flushes one worker's locally accumulated tally into the registry
// (once, when the worker retires — never per task).
void record_worker_telemetry(std::size_t worker, std::uint64_t tasks,
                             std::uint64_t busy_ns) {
  if (tasks == 0 || !obs::enabled()) return;
  obs::counter("core.pool.tasks").add(tasks);
  obs::counter("core.pool.busy_us").add(busy_ns / 1000);
  char name[64];
  std::snprintf(name, sizeof(name), "core.pool.worker.%zu.tasks", worker);
  obs::counter(name).add(tasks);
  std::snprintf(name, sizeof(name), "core.pool.worker.%zu.busy_us", worker);
  obs::counter(name).add(busy_ns / 1000);
}

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t from_env = env_threads();
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (obs::enabled()) {
    static obs::Counter& pools = obs::counter("core.pool.instances");
    pools.add(1);
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker) {
  // Task and busy-time tallies stay thread-local until the worker
  // retires, so instrumentation adds no per-task synchronization.
  std::uint64_t tasks_run = 0;
  std::uint64_t busy_ns = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        record_worker_telemetry(worker, tasks_run, busy_ns);
        return;  // stop_ set and no work left
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    const bool timed = obs::enabled();
    const std::uint64_t start_ns = timed ? obs::wall_now_ns() : 0;
    task();
    if (timed) {
      ++tasks_run;
      busy_ns += obs::wall_now_ns() - start_ns;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

void parallel_for(
    std::size_t count, std::size_t threads,
    const std::function<void(std::size_t begin, std::size_t end)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::max<std::size_t>(1, threads);
  if (workers == 1 || count == 1) {
    body(0, count);
    return;
  }

  const obs::Span span("core.parallel_for");

  // Oversubscribe chunks 4x so uneven per-index costs still balance;
  // chunk boundaries never affect the result, only the schedule.
  const std::size_t chunks =
      std::min(count, std::max<std::size_t>(workers * 4, 1));
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  if (obs::enabled()) {
    static obs::Counter& calls = obs::counter("core.parallel_for.calls");
    static obs::Counter& chunk_count = obs::counter("core.parallel_for.chunks");
    calls.add(1);
    chunk_count.add((count + chunk_size - 1) / chunk_size);
  }

  ThreadPool pool(workers);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    pool.submit([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rascal::core

#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

namespace rascal::core {

namespace {

std::size_t env_threads() {
  const char* text = std::getenv("RASCAL_THREADS");
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  return static_cast<std::size_t>(value);
}

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t from_env = env_threads();
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and no work left
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

void parallel_for(
    std::size_t count, std::size_t threads,
    const std::function<void(std::size_t begin, std::size_t end)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::max<std::size_t>(1, threads);
  if (workers == 1 || count == 1) {
    body(0, count);
    return;
  }

  // Oversubscribe chunks 4x so uneven per-index costs still balance;
  // chunk boundaries never affect the result, only the schedule.
  const std::size_t chunks =
      std::min(count, std::max<std::size_t>(workers * 4, 1));
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  ThreadPool pool(workers);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    pool.submit([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rascal::core

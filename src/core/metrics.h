// Markov reward metrics: the system measures reported in the paper
// (availability, yearly downtime, MTBF) plus the two-state equivalent
// abstraction that powers hierarchical composition.
#pragma once

#include <vector>

#include "ctmc/ctmc.h"
#include "ctmc/steady_state.h"

namespace rascal::core {

/// A state counts as "up" when its reward rate is at least this
/// threshold; the paper uses rewards of exactly 0 and 1.
inline constexpr double kDefaultUpThreshold = 0.5;

struct AvailabilityMetrics {
  double availability = 1.0;           // P(reward >= threshold)
  double unavailability = 0.0;         // 1 - availability
  double downtime_minutes_per_year = 0.0;
  double expected_reward_rate = 1.0;   // sum pi_i * r_i (performability)
  double failure_frequency = 0.0;      // system failures per hour
  double mtbf_hours = 0.0;             // 1 / failure_frequency
  double mttf_hours = 0.0;             // mean up duration between failures
  double mttr_hours = 0.0;             // mean down duration per failure
};

/// Computes the metric set from a solved steady state.  Throws
/// std::invalid_argument on a size mismatch between chain and
/// solution.  A chain with no down states reports availability 1 and
/// infinite MTBF (represented as +inf).
[[nodiscard]] AvailabilityMetrics availability_metrics(
    const ctmc::Ctmc& chain, const ctmc::SteadyState& steady,
    double up_threshold = kDefaultUpThreshold);

/// Convenience: solve (GTH) and compute metrics in one call.
[[nodiscard]] AvailabilityMetrics solve_availability(
    const ctmc::Ctmc& chain, double up_threshold = kDefaultUpThreshold);

/// Two-state abstraction of a submodel, as used by RAScad when a
/// subsystem diagram is referenced from a parent diagram (Figure 2):
/// the submodel collapses to Up --lambda_eq--> Down --mu_eq--> Up with
///   lambda_eq = failure frequency / P(up)     (conditional failure rate)
///   mu_eq     = failure frequency / P(down)   (conditional repair rate)
/// These preserve both the steady-state availability and the failure
/// frequency of the original submodel.
struct TwoStateEquivalent {
  double lambda_eq = 0.0;
  double mu_eq = 0.0;

  [[nodiscard]] double availability() const noexcept {
    if (lambda_eq == 0.0) return 1.0;  // covers mu_eq == +inf as well
    return mu_eq / (lambda_eq + mu_eq);
  }
};

[[nodiscard]] TwoStateEquivalent two_state_equivalent(
    const ctmc::Ctmc& chain, const ctmc::SteadyState& steady,
    double up_threshold = kDefaultUpThreshold);

/// Steady-state downtime attribution: expected minutes per year spent
/// in each state (nonzero only for down states).  Sums to
/// downtime_minutes_per_year.
struct StateDowntime {
  ctmc::StateId state = 0;
  double minutes_per_year = 0.0;
};
[[nodiscard]] std::vector<StateDowntime> downtime_by_state(
    const ctmc::Ctmc& chain, const ctmc::SteadyState& steady,
    double up_threshold = kDefaultUpThreshold);

}  // namespace rascal::core

#include "core/hierarchy.h"

#include <set>
#include <stdexcept>

namespace rascal::core {

HierarchicalModel& HierarchicalModel::add_submodel(Submodel submodel) {
  std::set<std::string> export_names;
  for (const Submodel& existing : submodels_) {
    if (existing.name == submodel.name) {
      throw std::invalid_argument("HierarchicalModel: duplicate submodel '" +
                                  submodel.name + "'");
    }
    for (const Export& e : existing.exports) {
      export_names.insert(e.parameter_name);
    }
  }
  for (const Export& e : submodel.exports) {
    if (!export_names.insert(e.parameter_name).second) {
      throw std::invalid_argument(
          "HierarchicalModel: duplicate export parameter '" +
          e.parameter_name + "'");
    }
  }
  submodels_.push_back(std::move(submodel));
  return *this;
}

HierarchicalModel& HierarchicalModel::set_root(ctmc::SymbolicCtmc root,
                                               double up_threshold) {
  root_ = std::move(root);
  root_up_threshold_ = up_threshold;
  has_root_ = true;
  return *this;
}

HierarchicalResult HierarchicalModel::solve(const expr::ParameterSet& inputs,
                                            ctmc::SteadyStateMethod method,
                                            ctmc::SolveCache* cache) const {
  if (!has_root_) {
    throw std::logic_error("HierarchicalModel::solve: no root model set");
  }
  HierarchicalResult result;
  expr::ParameterSet params = inputs;

  const auto solve_chain = [&](const ctmc::Ctmc& chain) {
    return cache != nullptr ? cache->steady_state(chain, method)
                            : ctmc::solve_steady_state(chain, method);
  };

  for (const Submodel& sub : submodels_) {
    const ctmc::Ctmc chain = sub.model.bind(params);
    ctmc::SteadyState steady = solve_chain(chain);
    SubmodelResult sr;
    sr.name = sub.name;
    sr.metrics = availability_metrics(chain, steady, sub.up_threshold);
    sr.equivalent = two_state_equivalent(chain, steady, sub.up_threshold);
    sr.steady = std::move(steady);

    for (const Export& e : sub.exports) {
      double value = 0.0;
      switch (e.kind) {
        case ExportKind::kLambdaEq: value = sr.equivalent.lambda_eq; break;
        case ExportKind::kMuEq: value = sr.equivalent.mu_eq; break;
        case ExportKind::kAvailability:
          value = sr.metrics.availability;
          break;
        case ExportKind::kUnavailability:
          value = sr.metrics.unavailability;
          break;
        case ExportKind::kFailureFrequency:
          value = sr.metrics.failure_frequency;
          break;
      }
      params.set(e.parameter_name, value);
    }
    result.submodels.push_back(std::move(sr));
  }

  const ctmc::Ctmc root_chain = root_.bind(params);
  result.root_steady = solve_chain(root_chain);
  result.system = availability_metrics(root_chain, result.root_steady,
                                       root_up_threshold_);
  result.effective_params = std::move(params);
  return result;
}

}  // namespace rascal::core

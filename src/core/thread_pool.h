// Deterministic parallel-execution layer.
//
// A fixed-size worker pool plus chunked parallel_for / parallel_map
// primitives used by every embarrassingly parallel sampling loop in
// the library (uncertainty analysis, parametric sweeps, the
// fault-injection campaign, simulator replications).
//
// Determinism contract: the primitives only decide *where* an index
// runs, never *what* it computes.  Callers draw per-index randomness
// from RandomEngine::split(index) substreams and write results into
// index-addressed slots, so any thread count — including 1 — produces
// bit-identical output.  Reductions that are sensitive to floating
// point ordering must be performed over the index-ordered results
// after the parallel region, not inside it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace rascal::core {

/// Resolves a requested thread count to the count actually used:
///   requested >  0 -> requested (explicit request wins);
///   requested == 0 -> the RASCAL_THREADS environment variable when it
///                     parses to a positive integer, otherwise
///                     std::thread::hardware_concurrency() (min 1).
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// Fixed-size worker pool.  Tasks are executed by `size()` long-lived
/// worker threads; `wait()` blocks until every submitted task has
/// finished.  The pool itself imposes no ordering between tasks —
/// deterministic callers must not care which worker runs which task.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until all tasks submitted so far have completed.
  void wait();

 private:
  // `worker` is the dense worker index, used to key the per-worker
  // utilization counters (core.pool.worker.N.*).
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

/// Runs `body(begin, end)` over a chunked partition of [0, count)
/// using `threads` workers (resolved per resolve_threads).  Chunks are
/// contiguous and cover each index exactly once; with threads <= 1 (or
/// count <= 1) the body runs inline on the calling thread.  The first
/// exception thrown by any chunk is rethrown on the caller after all
/// workers finish.
void parallel_for(
    std::size_t count, std::size_t threads,
    const std::function<void(std::size_t begin, std::size_t end)>& body);

/// results[i] = fn(i) for i in [0, count), computed on `threads`
/// workers.  The result vector is index-ordered and independent of the
/// thread count.  The element type must be default-constructible.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t count, std::size_t threads,
                                Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(count);
  parallel_for(count, threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace rascal::core

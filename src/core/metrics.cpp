#include "core/metrics.h"

#include <limits>
#include <stdexcept>

#include "core/units.h"

namespace rascal::core {

namespace {

void check_sizes(const ctmc::Ctmc& chain, const ctmc::SteadyState& steady) {
  if (steady.probabilities.size() != chain.num_states()) {
    throw std::invalid_argument(
        "availability_metrics: steady-state size mismatch");
  }
}

}  // namespace

AvailabilityMetrics availability_metrics(const ctmc::Ctmc& chain,
                                         const ctmc::SteadyState& steady,
                                         double up_threshold) {
  check_sizes(chain, steady);
  AvailabilityMetrics m;

  // Sum the *down* probabilities directly: availability models leave
  // only ~1e-6..1e-30 mass in down states, which "1 - sum(up)" would
  // destroy by cancellation.
  std::vector<bool> up(chain.num_states());
  double p_down = 0.0;
  double reward_rate = 0.0;
  for (ctmc::StateId i = 0; i < chain.num_states(); ++i) {
    up[i] = chain.reward(i) >= up_threshold;
    if (!up[i]) p_down += steady.probability(i);
    reward_rate += steady.probability(i) * chain.reward(i);
  }
  const double p_up = 1.0 - p_down;
  m.availability = p_up;
  m.unavailability = p_down;
  m.downtime_minutes_per_year = downtime_minutes_per_year(m.unavailability);
  m.expected_reward_rate = reward_rate;

  // Frequency of system failures: flow across the up -> down cut.
  double freq = 0.0;
  for (const ctmc::Transition& t : chain.transitions()) {
    if (up[t.from] && !up[t.to]) freq += steady.probability(t.from) * t.rate;
  }
  m.failure_frequency = freq;
  if (freq > 0.0) {
    m.mtbf_hours = 1.0 / freq;
    m.mttf_hours = p_up / freq;
    m.mttr_hours = (1.0 - p_up) / freq;
  } else {
    m.mtbf_hours = std::numeric_limits<double>::infinity();
    m.mttf_hours = std::numeric_limits<double>::infinity();
    m.mttr_hours = 0.0;
  }
  return m;
}

AvailabilityMetrics solve_availability(const ctmc::Ctmc& chain,
                                       double up_threshold) {
  return availability_metrics(chain, ctmc::solve_steady_state(chain),
                              up_threshold);
}

TwoStateEquivalent two_state_equivalent(const ctmc::Ctmc& chain,
                                        const ctmc::SteadyState& steady,
                                        double up_threshold) {
  const AvailabilityMetrics m =
      availability_metrics(chain, steady, up_threshold);
  TwoStateEquivalent eq;
  if (m.availability > 0.0) {
    eq.lambda_eq = m.failure_frequency / m.availability;
  }
  if (m.unavailability > 0.0) {
    eq.mu_eq = m.failure_frequency / m.unavailability;
  } else {
    // No reachable down state: the equivalent repair rate is
    // irrelevant; use infinity so availability() reports 1.
    eq.mu_eq = std::numeric_limits<double>::infinity();
  }
  return eq;
}

std::vector<StateDowntime> downtime_by_state(const ctmc::Ctmc& chain,
                                             const ctmc::SteadyState& steady,
                                             double up_threshold) {
  check_sizes(chain, steady);
  std::vector<StateDowntime> out;
  for (ctmc::StateId i = 0; i < chain.num_states(); ++i) {
    if (chain.reward(i) < up_threshold) {
      out.push_back(
          {i, downtime_minutes_per_year(steady.probability(i))});
    }
  }
  return out;
}

}  // namespace rascal::core

// Hierarchical Markov reward models, RAScad style (paper Section 6).
//
// A HierarchicalModel is an ordered list of symbolic submodels topped
// by a root model.  Each submodel is solved against the current
// parameter bindings and *exports* derived quantities (its equivalent
// failure rate, recovery rate, availability, ...) as new parameters
// visible to later submodels and the root.  This is exactly how the
// paper's Figure 2 references "$Lambda1/$Mu1" evaluated from the
// "Appl Server" and "HADB Node Pair" subdiagrams.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "ctmc/builder.h"
#include "ctmc/solve_cache.h"
#include "ctmc/steady_state.h"
#include "expr/parameter_set.h"

namespace rascal::core {

/// Quantity a submodel can export into the parent's parameter space.
enum class ExportKind {
  kLambdaEq,          // equivalent failure rate (per hour)
  kMuEq,              // equivalent recovery rate (per hour)
  kAvailability,      // steady-state availability
  kUnavailability,    // 1 - availability
  kFailureFrequency,  // failures per hour
};

struct Export {
  std::string parameter_name;  // name bound in the parent scope
  ExportKind kind = ExportKind::kLambdaEq;
};

struct Submodel {
  std::string name;
  ctmc::SymbolicCtmc model;
  std::vector<Export> exports;
  double up_threshold = kDefaultUpThreshold;
};

struct SubmodelResult {
  std::string name;
  AvailabilityMetrics metrics;
  TwoStateEquivalent equivalent;
  ctmc::SteadyState steady;
};

struct HierarchicalResult {
  std::vector<SubmodelResult> submodels;
  AvailabilityMetrics system;          // metrics of the root model
  ctmc::SteadyState root_steady;
  expr::ParameterSet effective_params;  // inputs + all exports
};

class HierarchicalModel {
 public:
  /// Appends a submodel; submodels are solved in insertion order, so a
  /// later submodel may reference parameters exported by an earlier
  /// one.  Throws std::invalid_argument on duplicate submodel names or
  /// duplicate export parameter names.
  HierarchicalModel& add_submodel(Submodel submodel);

  /// Sets the root (system-level) model.
  HierarchicalModel& set_root(ctmc::SymbolicCtmc root,
                              double up_threshold = kDefaultUpThreshold);

  /// Solves the hierarchy bottom-up with the given input parameters.
  /// Throws expr::UnknownParameterError when a referenced parameter is
  /// neither an input nor an earlier export, and std::logic_error when
  /// no root model has been set.
  ///
  /// An optional per-worker SolveCache supplies reusable solver
  /// scratch and memoizes repeated generators; results are
  /// bit-identical with and without one (oracle-gated).
  [[nodiscard]] HierarchicalResult solve(
      const expr::ParameterSet& inputs,
      ctmc::SteadyStateMethod method = ctmc::SteadyStateMethod::kGth,
      ctmc::SolveCache* cache = nullptr) const;

  [[nodiscard]] std::size_t num_submodels() const noexcept {
    return submodels_.size();
  }

 private:
  std::vector<Submodel> submodels_;
  ctmc::SymbolicCtmc root_;
  double root_up_threshold_ = kDefaultUpThreshold;
  bool has_root_ = false;
};

}  // namespace rascal::core

#include "faultinj/testbed.h"

#include <stdexcept>

namespace rascal::faultinj {

Testbed Testbed::jsas_lab() {
  Testbed bed;
  bed.add_host("loadbalancer", HostRole::kLoadBalancer);

  const HostId as1 = bed.add_host("e450-as1", HostRole::kAppServer);
  bed.add_process(as1, "appserv-instance1");
  bed.add_process(as1, "lbp-healthcheck");
  const HostId as2 = bed.add_host("e450-as2", HostRole::kAppServer);
  bed.add_process(as2, "appserv-instance2");
  bed.add_process(as2, "lbp-healthcheck");

  // Two mirrored DRU pairs; each HADB node is a bundle of processes.
  for (std::size_t pair = 0; pair < 2; ++pair) {
    for (std::size_t side = 0; side < 2; ++side) {
      const HostId node = bed.add_host(
          "u80-hadb" + std::to_string(pair * 2 + side + 1),
          HostRole::kHadbNode, pair);
      bed.add_process(node, "hadb-nsup");   // node supervisor
      bed.add_process(node, "hadb-trans");  // transaction server
      bed.add_process(node, "hadb-relalg"); // relational algebra engine
    }
  }

  const HostId db = bed.add_host("oracle", HostRole::kDatabase);
  bed.add_process(db, "oracle-listener");
  const HostId dir = bed.add_host("directory", HostRole::kDirectory);
  bed.add_process(dir, "slapd");
  return bed;
}

HostId Testbed::add_host(std::string name, HostRole role,
                         std::optional<std::size_t> hadb_pair) {
  Host h;
  h.name = std::move(name);
  h.role = role;
  h.hadb_pair = hadb_pair;
  hosts_.push_back(std::move(h));
  return hosts_.size() - 1;
}

ProcessId Testbed::add_process(HostId host, std::string name) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("Testbed::add_process: bad host");
  }
  hosts_[host].processes.push_back({std::move(name), true});
  return hosts_[host].processes.size() - 1;
}

const Host& Testbed::host(HostId id) const {
  if (id >= hosts_.size()) throw std::out_of_range("Testbed::host");
  return hosts_[id];
}

std::vector<HostId> Testbed::hosts_with_role(HostRole role) const {
  std::vector<HostId> out;
  for (HostId id = 0; id < hosts_.size(); ++id) {
    if (hosts_[id].role == role) out.push_back(id);
  }
  return out;
}

void Testbed::kill_process(HostId host, ProcessId process) {
  if (host >= hosts_.size() ||
      process >= hosts_[host].processes.size()) {
    throw std::out_of_range("Testbed::kill_process");
  }
  hosts_[host].processes[process].running = false;
}

void Testbed::kill_all_processes(HostId host) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("Testbed::kill_all_processes");
  }
  for (Process& p : hosts_[host].processes) p.running = false;
}

void Testbed::disconnect_network(HostId host) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("Testbed::disconnect_network");
  }
  hosts_[host].network_connected = false;
}

void Testbed::power_off(HostId host) {
  if (host >= hosts_.size()) throw std::out_of_range("Testbed::power_off");
  hosts_[host].powered = false;
  for (Process& p : hosts_[host].processes) p.running = false;
}

void Testbed::restart_processes(HostId host) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("Testbed::restart_processes");
  }
  if (!hosts_[host].powered) {
    throw std::logic_error("Testbed: cannot restart processes without power");
  }
  for (Process& p : hosts_[host].processes) p.running = true;
}

void Testbed::reconnect_network(HostId host) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("Testbed::reconnect_network");
  }
  hosts_[host].network_connected = true;
}

void Testbed::power_on(HostId host) {
  if (host >= hosts_.size()) throw std::out_of_range("Testbed::power_on");
  hosts_[host].powered = true;
}

void Testbed::restore(HostId host) {
  power_on(host);
  reconnect_network(host);
  restart_processes(host);
}

bool Testbed::functional(HostId id) const {
  const Host& h = host(id);
  if (!h.powered || !h.network_connected) return false;
  for (const Process& p : h.processes) {
    if (!p.running) return false;
  }
  return true;
}

bool Testbed::service_available() const {
  bool any_as = false;
  for (HostId id : hosts_with_role(HostRole::kAppServer)) {
    if (functional(id)) any_as = true;
  }
  if (!any_as) return false;

  // Each pair must keep one functional node.
  std::vector<std::size_t> pair_alive;
  std::vector<std::size_t> pair_total;
  for (HostId id : hosts_with_role(HostRole::kHadbNode)) {
    const std::size_t pair = *host(id).hadb_pair;
    if (pair >= pair_total.size()) {
      pair_total.resize(pair + 1, 0);
      pair_alive.resize(pair + 1, 0);
    }
    ++pair_total[pair];
    if (functional(id)) ++pair_alive[pair];
  }
  for (std::size_t pair = 0; pair < pair_total.size(); ++pair) {
    if (pair_total[pair] > 0 && pair_alive[pair] == 0) return false;
  }
  return true;
}

}  // namespace rascal::faultinj

// Fault-injection campaign driver (paper Section 3).
//
// Repeatedly injects one of the paper's fault classes into the
// simulated testbed, exercises the automatic recovery machinery,
// verifies the service stayed available (single faults must be
// tolerated) and the target returned to service, and records the
// recovery time.  Aggregated outcomes feed the Equation-1 coverage
// bound used to set FIR, and the recovery-time samples justify the
// conservative Section-5 restart parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faultinj/testbed.h"
#include "resil/resil.h"
#include "stats/rng.h"
#include "stats/summary.h"

namespace rascal::faultinj {

/// The fault classes of Section 3 (manual and automated lists).
enum class FaultClass {
  kHadbKillAllProcesses,   // full node failure
  kHadbKillRandomProcess,  // software bug simulation
  kHadbFastTerminate,      // fast-fail request
  kHadbNetworkUnplug,
  kHadbPowerUnplug,
  kAsKillProcesses,
  kAsNetworkUnplug,
  kAsPowerUnplug,
};

[[nodiscard]] std::string to_string(FaultClass fault);

/// Workload level at injection time: the paper "fluctuated [the
/// workloads] from idle to fully loaded states" during the campaign.
enum class WorkloadLevel { kIdle, kModerate, kFullyLoaded };
[[nodiscard]] std::string to_string(WorkloadLevel level);

/// Rare operating modes combined with the injections ("repair and
/// data reorganization modes").
enum class SystemMode { kNormal, kRepair, kDataReorganization };
[[nodiscard]] std::string to_string(SystemMode mode);

/// Ground-truth behaviour of the simulated recovery machinery.  The
/// paper's real system recovered 3,287/3,287 injections; with the
/// default true_imperfect_recovery = 0 the simulated campaign
/// reproduces that outcome and the estimators bound FIR from above.
struct RecoveryModel {
  double true_imperfect_recovery = 0.0;  // P(recovery fails)
  // Means of the recovery-time distributions observed in the lab
  // (hours): HADB restart ~40 s, HADB OS reboot ~ 10 min, spare
  // rebuild ~12 min/GB, AS restart ~25 s, AS reboot ~15 min,
  // AS HW replacement ~100 min.
  double hadb_restart_mean = 40.0 / 3600.0;
  double hadb_reboot_mean = 10.0 / 60.0;
  double hadb_rebuild_mean = 12.0 / 60.0;
  double as_restart_mean = 25.0 / 3600.0;
  double as_reboot_mean = 15.0 / 60.0;
  double as_replace_mean = 100.0 / 60.0;
  double lognormal_sigma = 0.25;  // spread of observed times

  // Recovery-time multipliers for the workload/mode conditions the
  // campaign cycles through (recovery competes with load).
  double idle_factor = 0.8;
  double full_load_factor = 1.3;
  double repair_mode_factor = 1.2;
  double reorg_mode_factor = 1.5;
};

struct InjectionRecord {
  FaultClass fault = FaultClass::kHadbKillAllProcesses;
  HostId target = 0;
  WorkloadLevel workload = WorkloadLevel::kModerate;
  SystemMode mode = SystemMode::kNormal;
  bool service_stayed_available = false;
  bool target_recovered = false;
  double recovery_time_hours = 0.0;
};

struct CampaignOptions {
  std::size_t trials = 3287;  // the paper's campaign size
  std::uint64_t seed = 1973;
  // Worker threads for the per-trial parallelism: 0 = automatic
  // (RASCAL_THREADS env, else hardware_concurrency).  Every trial
  // draws from its own RandomEngine::split(trial) substream and the
  // aggregates are accumulated in trial order after the parallel
  // region, so any thread count produces bit-identical results.
  std::size_t threads = 0;
  RecoveryModel recovery;
  // Resilience: cancellation, checkpoint/resume, skip-failed-trials.
  // Excluded from the checkpoint digest (resume may legally change
  // thread count or control settings).
  resil::ExecutionControl control;
};

/// A trial whose execution threw (recorded under
/// ExecutionControl::skip_failures instead of aborting the campaign).
struct TrialFailure {
  std::size_t trial = 0;
  std::string error;
};

struct CampaignResult {
  std::vector<InjectionRecord> records;  // completed trials, trial order
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;  // recovered with service available
  stats::Summary hadb_restart_times;
  stats::Summary hadb_rebuild_times;
  stats::Summary as_restart_times;
  // Recovery-time summaries per workload level (indexed by the enum).
  stats::Summary recovery_by_workload[3];

  std::vector<TrialFailure> failures;  // dropped trials, in trial order
  std::uint64_t requested = 0;         // trials asked for
  bool interrupted = false;            // cancelled with work pending
  std::string interrupt_reason;        // cancel token's describe()

  /// Equation-1 upper bound on FIR at the given confidence.
  [[nodiscard]] double fir_upper_bound(double confidence) const;
};

/// Fingerprint of everything that determines a campaign's result bits
/// (seed, trial count, recovery model, and the RNG substream
/// derivation — NOT the thread count); the checkpoint digest.
[[nodiscard]] std::uint64_t campaign_checkpoint_digest(
    const CampaignOptions& options);

/// Runs `options.trials` injections against a fresh jsas_lab testbed,
/// cycling through the fault classes and alternating targets.
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options = {});

/// Simulates a longevity (stability) run: `machines` systems observed
/// for `days` days with a ground-truth failure rate (per machine-day).
/// Returns the number of failures observed — 0 with the default
/// truth, matching the paper's 24-day clean run.
[[nodiscard]] std::uint64_t simulate_longevity(double days,
                                               std::size_t machines,
                                               double true_rate_per_day,
                                               stats::RandomEngine& rng);

}  // namespace rascal::faultinj

// Simulated lab testbed mirroring the paper's Table 1 environment:
// hosts running Application Server instances and HADB node processes,
// with injectable process, network, and power faults.  The real study
// ran >3,000 injections against physical E450/Ultra-80 machines; this
// substitute exposes the same fault surface so the estimation
// pipeline (Equation 1, recovery-time measurement) runs end to end.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace rascal::faultinj {

using HostId = std::size_t;
using ProcessId = std::size_t;

enum class HostRole {
  kLoadBalancer,
  kAppServer,
  kHadbNode,
  kDatabase,
  kDirectory,
};

struct Process {
  std::string name;
  bool running = true;
};

struct Host {
  std::string name;
  HostRole role = HostRole::kAppServer;
  bool powered = true;
  bool network_connected = true;
  std::vector<Process> processes;
  // HADB nodes are mirrored in pairs; kNone for other roles.
  std::optional<std::size_t> hadb_pair;
};

class Testbed {
 public:
  /// Builds the Table 1 lab: a load balancer, two AS hosts (Sun E450)
  /// each running one JSAS instance, four HADB hosts (Sun Ultra 80)
  /// forming two mirrored pairs, plus Oracle and Directory Server
  /// hosts.
  [[nodiscard]] static Testbed jsas_lab();

  HostId add_host(std::string name, HostRole role,
                  std::optional<std::size_t> hadb_pair = std::nullopt);
  ProcessId add_process(HostId host, std::string name);

  [[nodiscard]] std::size_t num_hosts() const noexcept {
    return hosts_.size();
  }
  [[nodiscard]] const Host& host(HostId id) const;

  [[nodiscard]] std::vector<HostId> hosts_with_role(HostRole role) const;

  // --- fault injection surface ---------------------------------------
  void kill_process(HostId host, ProcessId process);
  void kill_all_processes(HostId host);
  void disconnect_network(HostId host);
  void power_off(HostId host);

  // --- recovery surface ----------------------------------------------
  void restart_processes(HostId host);
  void reconnect_network(HostId host);
  void power_on(HostId host);
  /// Full restoration (power + network + processes).
  void restore(HostId host);

  /// A node is functional when powered, connected, and all its
  /// processes run.
  [[nodiscard]] bool functional(HostId id) const;

  /// The service stays up if at least one AS host is functional and
  /// each HADB pair retains at least one functional node.
  [[nodiscard]] bool service_available() const;

 private:
  std::vector<Host> hosts_;
};

}  // namespace rascal::faultinj

#include "faultinj/injector.h"

#include <cmath>
#include <stdexcept>

#include "core/thread_pool.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "stats/estimators.h"

namespace rascal::faultinj {

std::string to_string(FaultClass fault) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses: return "hadb-kill-all-processes";
    case FaultClass::kHadbKillRandomProcess:
      return "hadb-kill-random-process";
    case FaultClass::kHadbFastTerminate: return "hadb-fast-terminate";
    case FaultClass::kHadbNetworkUnplug: return "hadb-network-unplug";
    case FaultClass::kHadbPowerUnplug: return "hadb-power-unplug";
    case FaultClass::kAsKillProcesses: return "as-kill-processes";
    case FaultClass::kAsNetworkUnplug: return "as-network-unplug";
    case FaultClass::kAsPowerUnplug: return "as-power-unplug";
  }
  return "unknown";
}

std::string to_string(WorkloadLevel level) {
  switch (level) {
    case WorkloadLevel::kIdle: return "idle";
    case WorkloadLevel::kModerate: return "moderate";
    case WorkloadLevel::kFullyLoaded: return "fully-loaded";
  }
  return "unknown";
}

std::string to_string(SystemMode mode) {
  switch (mode) {
    case SystemMode::kNormal: return "normal";
    case SystemMode::kRepair: return "repair";
    case SystemMode::kDataReorganization: return "data-reorganization";
  }
  return "unknown";
}

double CampaignResult::fir_upper_bound(double confidence) const {
  return stats::imperfect_recovery_upper_bound(trials, successes, confidence);
}

namespace {

constexpr FaultClass kAllFaults[] = {
    FaultClass::kHadbKillAllProcesses, FaultClass::kHadbKillRandomProcess,
    FaultClass::kHadbFastTerminate,    FaultClass::kHadbNetworkUnplug,
    FaultClass::kHadbPowerUnplug,      FaultClass::kAsKillProcesses,
    FaultClass::kAsNetworkUnplug,      FaultClass::kAsPowerUnplug,
};

bool targets_hadb(FaultClass fault) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses:
    case FaultClass::kHadbKillRandomProcess:
    case FaultClass::kHadbFastTerminate:
    case FaultClass::kHadbNetworkUnplug:
    case FaultClass::kHadbPowerUnplug:
      return true;
    default:
      return false;
  }
}

double lognormal_around(double mean, double sigma,
                        stats::RandomEngine& rng) {
  // Parameterize so the distribution's mean equals `mean`.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + sigma * rng.normal01());
}

void apply_fault(Testbed& bed, FaultClass fault, HostId target,
                 stats::RandomEngine& rng) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses:
    case FaultClass::kAsKillProcesses:
      bed.kill_all_processes(target);
      break;
    case FaultClass::kHadbKillRandomProcess: {
      const std::size_t n = bed.host(target).processes.size();
      bed.kill_process(target, rng.uniform_index(n));
      break;
    }
    case FaultClass::kHadbFastTerminate:
      // "Ask processes to terminate immediately": clean fast-fail of
      // one process.
      bed.kill_process(target, 0);
      break;
    case FaultClass::kHadbNetworkUnplug:
    case FaultClass::kAsNetworkUnplug:
      bed.disconnect_network(target);
      break;
    case FaultClass::kHadbPowerUnplug:
    case FaultClass::kAsPowerUnplug:
      bed.power_off(target);
      break;
  }
}

// Recovery time drawn from the class-appropriate lab distribution.
double recovery_time(FaultClass fault, const RecoveryModel& model,
                     stats::RandomEngine& rng) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses:
    case FaultClass::kHadbKillRandomProcess:
    case FaultClass::kHadbFastTerminate:
      return lognormal_around(model.hadb_restart_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kHadbNetworkUnplug:
      return lognormal_around(model.hadb_reboot_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kHadbPowerUnplug:
      // Node lost for good: companion rebuilds a spare.
      return lognormal_around(model.hadb_rebuild_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kAsKillProcesses:
      return lognormal_around(model.as_restart_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kAsNetworkUnplug:
      return lognormal_around(model.as_reboot_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kAsPowerUnplug:
      return lognormal_around(model.as_replace_mean, model.lognormal_sigma,
                              rng);
  }
  return 0.0;
}

// One injection: fault the target, observe availability, drive
// recovery, restore the testbed.  All randomness comes from the
// trial's own substream, so trials are independent of each other and
// of the thread that runs them.
InjectionRecord run_trial(std::size_t trial, Testbed& bed,
                          const std::vector<HostId>& hadb_hosts,
                          const std::vector<HostId>& as_hosts,
                          const RecoveryModel& recovery,
                          stats::RandomEngine rng) {
  const FaultClass fault = kAllFaults[trial % std::size(kAllFaults)];
  const std::vector<HostId>& pool =
      targets_hadb(fault) ? hadb_hosts : as_hosts;
  const HostId target = pool[rng.uniform_index(pool.size())];

  apply_fault(bed, fault, target, rng);

  InjectionRecord record;
  record.fault = fault;
  record.target = target;
  // Fluctuate the workload and occasionally combine the injection
  // with a rare operating mode, as the lab campaign did.
  record.workload = static_cast<WorkloadLevel>(rng.uniform_index(3));
  const double mode_pick = rng.uniform01();
  record.mode = mode_pick < 0.05   ? SystemMode::kRepair
                : mode_pick < 0.10 ? SystemMode::kDataReorganization
                                   : SystemMode::kNormal;
  double condition_factor = 1.0;
  switch (record.workload) {
    case WorkloadLevel::kIdle:
      condition_factor *= recovery.idle_factor;
      break;
    case WorkloadLevel::kModerate: break;
    case WorkloadLevel::kFullyLoaded:
      condition_factor *= recovery.full_load_factor;
      break;
  }
  switch (record.mode) {
    case SystemMode::kNormal: break;
    case SystemMode::kRepair:
      condition_factor *= recovery.repair_mode_factor;
      break;
    case SystemMode::kDataReorganization:
      condition_factor *= recovery.reorg_mode_factor;
      break;
  }
  // Single-fault tolerance: the redundant peer keeps the service up
  // while exactly one node is impaired.
  record.service_stayed_available = bed.service_available();
  // The watchdog / companion drives recovery; with probability
  // true_imperfect_recovery the recovery handler itself fails (the
  // event FIR models).
  record.target_recovered =
      !rng.bernoulli(recovery.true_imperfect_recovery);
  record.recovery_time_hours =
      recovery_time(fault, recovery, rng) * condition_factor;

  // Recovered automatically or repaired by operators — either way the
  // testbed is pristine before the next trial.
  bed.restore(target);
  return record;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  const obs::Span span("faultinj.campaign");
  if (options.trials == 0) {
    throw std::invalid_argument("run_campaign: zero trials");
  }
  const stats::RandomEngine root(options.seed);
  const Testbed prototype = Testbed::jsas_lab();
  const std::vector<HostId> hadb_hosts =
      prototype.hosts_with_role(HostRole::kHadbNode);
  const std::vector<HostId> as_hosts =
      prototype.hosts_with_role(HostRole::kAppServer);

  // Each trial draws from its own substream and writes only its own
  // record slot; every worker faults a private copy of the testbed.
  CampaignResult result;
  result.records.resize(options.trials);
  // Spans and progress ticks read clocks/atomics only, never the RNG:
  // every trial still consumes exactly its own substream.
  obs::Progress progress("campaign", options.trials);
  core::parallel_for(
      options.trials, core::resolve_threads(options.threads),
      [&](std::size_t begin, std::size_t end) {
        Testbed bed = prototype;
        for (std::size_t trial = begin; trial < end; ++trial) {
          const obs::Span trial_span("faultinj.trial");
          result.records[trial] =
              run_trial(trial, bed, hadb_hosts, as_hosts, options.recovery,
                        root.split(trial));
          progress.tick();
        }
      });
  progress.finish();

  // Order-sensitive aggregation happens serially, in trial order, so
  // the summaries are bit-identical for every thread count.
  for (const InjectionRecord& record : result.records) {
    ++result.trials;
    if (record.service_stayed_available && record.target_recovered) {
      ++result.successes;
    }
    result.recovery_by_workload[static_cast<std::size_t>(record.workload)]
        .add(record.recovery_time_hours);
    switch (record.fault) {
      case FaultClass::kHadbKillAllProcesses:
      case FaultClass::kHadbKillRandomProcess:
      case FaultClass::kHadbFastTerminate:
        result.hadb_restart_times.add(record.recovery_time_hours);
        break;
      case FaultClass::kHadbPowerUnplug:
        result.hadb_rebuild_times.add(record.recovery_time_hours);
        break;
      case FaultClass::kAsKillProcesses:
        result.as_restart_times.add(record.recovery_time_hours);
        break;
      default:
        break;
    }
  }
  if (obs::enabled()) {
    obs::counter("faultinj.trials").add(result.trials);
    obs::counter("faultinj.successes").add(result.successes);
  }
  return result;
}

std::uint64_t simulate_longevity(double days, std::size_t machines,
                                 double true_rate_per_day,
                                 stats::RandomEngine& rng) {
  if (!(days > 0.0) || machines == 0 || true_rate_per_day < 0.0) {
    throw std::invalid_argument("simulate_longevity: bad arguments");
  }
  // Failures arrive as a Poisson process over the machine-days.
  const double exposure = days * static_cast<double>(machines);
  std::uint64_t failures = 0;
  if (true_rate_per_day == 0.0) return 0;
  double t = rng.exponential(true_rate_per_day);
  while (t < exposure) {
    ++failures;
    t += rng.exponential(true_rate_per_day);
  }
  return failures;
}

}  // namespace rascal::faultinj

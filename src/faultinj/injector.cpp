#include "faultinj/injector.h"

#include <cmath>
#include <stdexcept>

#include "core/thread_pool.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "resil/chaos.h"
#include "stats/estimators.h"

namespace rascal::faultinj {

std::string to_string(FaultClass fault) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses: return "hadb-kill-all-processes";
    case FaultClass::kHadbKillRandomProcess:
      return "hadb-kill-random-process";
    case FaultClass::kHadbFastTerminate: return "hadb-fast-terminate";
    case FaultClass::kHadbNetworkUnplug: return "hadb-network-unplug";
    case FaultClass::kHadbPowerUnplug: return "hadb-power-unplug";
    case FaultClass::kAsKillProcesses: return "as-kill-processes";
    case FaultClass::kAsNetworkUnplug: return "as-network-unplug";
    case FaultClass::kAsPowerUnplug: return "as-power-unplug";
  }
  return "unknown";
}

std::string to_string(WorkloadLevel level) {
  switch (level) {
    case WorkloadLevel::kIdle: return "idle";
    case WorkloadLevel::kModerate: return "moderate";
    case WorkloadLevel::kFullyLoaded: return "fully-loaded";
  }
  return "unknown";
}

std::string to_string(SystemMode mode) {
  switch (mode) {
    case SystemMode::kNormal: return "normal";
    case SystemMode::kRepair: return "repair";
    case SystemMode::kDataReorganization: return "data-reorganization";
  }
  return "unknown";
}

double CampaignResult::fir_upper_bound(double confidence) const {
  return stats::imperfect_recovery_upper_bound(trials, successes, confidence);
}

namespace {

constexpr FaultClass kAllFaults[] = {
    FaultClass::kHadbKillAllProcesses, FaultClass::kHadbKillRandomProcess,
    FaultClass::kHadbFastTerminate,    FaultClass::kHadbNetworkUnplug,
    FaultClass::kHadbPowerUnplug,      FaultClass::kAsKillProcesses,
    FaultClass::kAsNetworkUnplug,      FaultClass::kAsPowerUnplug,
};

bool targets_hadb(FaultClass fault) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses:
    case FaultClass::kHadbKillRandomProcess:
    case FaultClass::kHadbFastTerminate:
    case FaultClass::kHadbNetworkUnplug:
    case FaultClass::kHadbPowerUnplug:
      return true;
    default:
      return false;
  }
}

double lognormal_around(double mean, double sigma,
                        stats::RandomEngine& rng) {
  // Parameterize so the distribution's mean equals `mean`.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + sigma * rng.normal01());
}

void apply_fault(Testbed& bed, FaultClass fault, HostId target,
                 stats::RandomEngine& rng) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses:
    case FaultClass::kAsKillProcesses:
      bed.kill_all_processes(target);
      break;
    case FaultClass::kHadbKillRandomProcess: {
      const std::size_t n = bed.host(target).processes.size();
      bed.kill_process(target, rng.uniform_index(n));
      break;
    }
    case FaultClass::kHadbFastTerminate:
      // "Ask processes to terminate immediately": clean fast-fail of
      // one process.
      bed.kill_process(target, 0);
      break;
    case FaultClass::kHadbNetworkUnplug:
    case FaultClass::kAsNetworkUnplug:
      bed.disconnect_network(target);
      break;
    case FaultClass::kHadbPowerUnplug:
    case FaultClass::kAsPowerUnplug:
      bed.power_off(target);
      break;
  }
}

// Recovery time drawn from the class-appropriate lab distribution.
double recovery_time(FaultClass fault, const RecoveryModel& model,
                     stats::RandomEngine& rng) {
  switch (fault) {
    case FaultClass::kHadbKillAllProcesses:
    case FaultClass::kHadbKillRandomProcess:
    case FaultClass::kHadbFastTerminate:
      return lognormal_around(model.hadb_restart_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kHadbNetworkUnplug:
      return lognormal_around(model.hadb_reboot_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kHadbPowerUnplug:
      // Node lost for good: companion rebuilds a spare.
      return lognormal_around(model.hadb_rebuild_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kAsKillProcesses:
      return lognormal_around(model.as_restart_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kAsNetworkUnplug:
      return lognormal_around(model.as_reboot_mean, model.lognormal_sigma,
                              rng);
    case FaultClass::kAsPowerUnplug:
      return lognormal_around(model.as_replace_mean, model.lognormal_sigma,
                              rng);
  }
  return 0.0;
}

// Checkpoint payload for one trial: the full InjectionRecord, exactly
// (times as IEEE-754 bit patterns), so a resumed campaign aggregates
// the same bits an uninterrupted one would.
std::vector<std::uint64_t> encode_record(const InjectionRecord& record) {
  return {static_cast<std::uint64_t>(record.fault),
          static_cast<std::uint64_t>(record.target),
          static_cast<std::uint64_t>(record.workload),
          static_cast<std::uint64_t>(record.mode),
          record.service_stayed_available ? 1ULL : 0ULL,
          record.target_recovered ? 1ULL : 0ULL,
          resil::f64_bits(record.recovery_time_hours)};
}

InjectionRecord decode_record(const std::vector<std::uint64_t>& words) {
  if (words.size() != 7 || words[0] >= std::size(kAllFaults) ||
      words[2] >= 3 || words[3] >= 3 || words[4] > 1 || words[5] > 1) {
    throw resil::CheckpointError(
        "run_campaign: checkpoint entry does not decode to a valid "
        "injection record");
  }
  InjectionRecord record;
  record.fault = static_cast<FaultClass>(words[0]);
  record.target = static_cast<HostId>(words[1]);
  record.workload = static_cast<WorkloadLevel>(words[2]);
  record.mode = static_cast<SystemMode>(words[3]);
  record.service_stayed_available = words[4] == 1;
  record.target_recovered = words[5] == 1;
  record.recovery_time_hours = resil::bits_f64(words[6]);
  return record;
}

// One injection: fault the target, observe availability, drive
// recovery, restore the testbed.  All randomness comes from the
// trial's own substream, so trials are independent of each other and
// of the thread that runs them.
InjectionRecord run_trial(std::size_t trial, Testbed& bed,
                          const std::vector<HostId>& hadb_hosts,
                          const std::vector<HostId>& as_hosts,
                          const RecoveryModel& recovery,
                          stats::RandomEngine rng) {
  const FaultClass fault = kAllFaults[trial % std::size(kAllFaults)];
  const std::vector<HostId>& pool =
      targets_hadb(fault) ? hadb_hosts : as_hosts;
  const HostId target = pool[rng.uniform_index(pool.size())];

  apply_fault(bed, fault, target, rng);

  InjectionRecord record;
  record.fault = fault;
  record.target = target;
  // Fluctuate the workload and occasionally combine the injection
  // with a rare operating mode, as the lab campaign did.
  record.workload = static_cast<WorkloadLevel>(rng.uniform_index(3));
  const double mode_pick = rng.uniform01();
  record.mode = mode_pick < 0.05   ? SystemMode::kRepair
                : mode_pick < 0.10 ? SystemMode::kDataReorganization
                                   : SystemMode::kNormal;
  double condition_factor = 1.0;
  switch (record.workload) {
    case WorkloadLevel::kIdle:
      condition_factor *= recovery.idle_factor;
      break;
    case WorkloadLevel::kModerate: break;
    case WorkloadLevel::kFullyLoaded:
      condition_factor *= recovery.full_load_factor;
      break;
  }
  switch (record.mode) {
    case SystemMode::kNormal: break;
    case SystemMode::kRepair:
      condition_factor *= recovery.repair_mode_factor;
      break;
    case SystemMode::kDataReorganization:
      condition_factor *= recovery.reorg_mode_factor;
      break;
  }
  // Single-fault tolerance: the redundant peer keeps the service up
  // while exactly one node is impaired.
  record.service_stayed_available = bed.service_available();
  // The watchdog / companion drives recovery; with probability
  // true_imperfect_recovery the recovery handler itself fails (the
  // event FIR models).
  record.target_recovered =
      !rng.bernoulli(recovery.true_imperfect_recovery);
  record.recovery_time_hours =
      recovery_time(fault, recovery, rng) * condition_factor;

  // Recovered automatically or repaired by operators — either way the
  // testbed is pristine before the next trial.
  bed.restore(target);
  return record;
}

}  // namespace

std::uint64_t campaign_checkpoint_digest(const CampaignOptions& options) {
  const RecoveryModel& recovery = options.recovery;
  resil::DigestBuilder digest;
  digest.add_str("campaign")
      .add_u64(options.seed)
      .add_u64(options.trials)
      // Probe the substream-derivation scheme (see uncertainty digest).
      .add_u64(stats::RandomEngine(options.seed).substream_seed(0))
      .add_f64(recovery.true_imperfect_recovery)
      .add_f64(recovery.hadb_restart_mean)
      .add_f64(recovery.hadb_reboot_mean)
      .add_f64(recovery.hadb_rebuild_mean)
      .add_f64(recovery.as_restart_mean)
      .add_f64(recovery.as_reboot_mean)
      .add_f64(recovery.as_replace_mean)
      .add_f64(recovery.lognormal_sigma)
      .add_f64(recovery.idle_factor)
      .add_f64(recovery.full_load_factor)
      .add_f64(recovery.repair_mode_factor)
      .add_f64(recovery.reorg_mode_factor);
  return digest.value();
}

CampaignResult run_campaign(const CampaignOptions& options) {
  const obs::Span span("faultinj.campaign");
  if (options.trials == 0) {
    throw std::invalid_argument("run_campaign: zero trials");
  }
  const stats::RandomEngine root(options.seed);
  const Testbed prototype = Testbed::jsas_lab();
  const std::vector<HostId> hadb_hosts =
      prototype.hosts_with_role(HostRole::kHadbNode);
  const std::vector<HostId> as_hosts =
      prototype.hosts_with_role(HostRole::kAppServer);

  const resil::CancellationToken* cancel = options.control.cancel;
  resil::Checkpointer* checkpoint = options.control.checkpoint;
  const bool skip_failures = options.control.skip_failures;

  // Per-trial completion state: 0 = pending, 1 = done, 2 = failed.
  // Checkpointed trials are replayed into their slots up front and
  // skipped by the workers; pending trials recompute identically from
  // root.split(trial), so resumed == uninterrupted bit-for-bit.
  std::vector<InjectionRecord> records(options.trials);
  std::vector<unsigned char> status(options.trials, 0);
  std::vector<std::string> errors(options.trials);
  if (checkpoint != nullptr) {
    if (checkpoint->total() != options.trials) {
      throw resil::CheckpointError(
          "run_campaign: checkpoint total does not match the trial count");
    }
    for (const resil::CheckpointEntry& entry : checkpoint->entries()) {
      const std::size_t trial = static_cast<std::size_t>(entry.index);
      if (entry.status == resil::EntryStatus::kOk) {
        records[trial] = decode_record(entry.words);
        status[trial] = 1;
      } else {
        status[trial] = 2;
        errors[trial] = entry.note;
      }
    }
  }

  // Each trial draws from its own substream and writes only its own
  // record slot; every worker faults a private copy of the testbed.
  // Spans and progress ticks read clocks/atomics only, never the RNG:
  // every trial still consumes exactly its own substream.
  obs::Progress progress("campaign", options.trials);
  core::parallel_for(
      options.trials, core::resolve_threads(options.threads),
      [&](std::size_t begin, std::size_t end) {
        Testbed bed = prototype;
        for (std::size_t trial = begin; trial < end; ++trial) {
          if (status[trial] != 0) continue;  // restored from checkpoint
          if (cancel != nullptr && cancel->cancelled()) return;  // drain
          try {
            resil::chaos::worker_hook(trial);
            const obs::Span trial_span("faultinj.trial");
            records[trial] =
                run_trial(trial, bed, hadb_hosts, as_hosts, options.recovery,
                          root.split(trial));
            status[trial] = 1;
            if (checkpoint != nullptr) {
              checkpoint->record({trial, resil::EntryStatus::kOk,
                                  encode_record(records[trial]), {}});
            }
          } catch (const resil::CancelledError&) {
            return;  // interrupted mid-trial: leave it pending
          } catch (const std::exception& failure) {
            if (!skip_failures) throw;
            status[trial] = 2;
            errors[trial] = failure.what();
            if (checkpoint != nullptr) {
              checkpoint->record({trial, resil::EntryStatus::kFailed, {},
                                  failure.what()});
            }
            if (obs::enabled()) {
              obs::counter("faultinj.trials_failed").add(1);
            }
            // The trial may have left the shared-prototype copy dirty;
            // start the next one from a pristine testbed.
            bed = prototype;
          }
          progress.tick();
        }
      });
  progress.finish();
  if (checkpoint != nullptr) checkpoint->flush();

  // Order-sensitive aggregation happens serially, in trial order, so
  // the summaries are bit-identical for every thread count.
  CampaignResult result;
  result.requested = options.trials;
  result.records.reserve(options.trials);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    if (status[trial] == 2) {
      result.failures.push_back({trial, errors[trial]});
      continue;
    }
    if (status[trial] != 1) continue;  // pending (interrupted)
    const InjectionRecord& record = records[trial];
    result.records.push_back(record);
    ++result.trials;
    if (record.service_stayed_available && record.target_recovered) {
      ++result.successes;
    }
    result.recovery_by_workload[static_cast<std::size_t>(record.workload)]
        .add(record.recovery_time_hours);
    switch (record.fault) {
      case FaultClass::kHadbKillAllProcesses:
      case FaultClass::kHadbKillRandomProcess:
      case FaultClass::kHadbFastTerminate:
        result.hadb_restart_times.add(record.recovery_time_hours);
        break;
      case FaultClass::kHadbPowerUnplug:
        result.hadb_rebuild_times.add(record.recovery_time_hours);
        break;
      case FaultClass::kAsKillProcesses:
        result.as_restart_times.add(record.recovery_time_hours);
        break;
      default:
        break;
    }
  }
  result.interrupted =
      cancel != nullptr && cancel->cancelled() &&
      result.trials + result.failures.size() < options.trials;
  if (result.interrupted) result.interrupt_reason = cancel->describe();
  if (obs::enabled()) {
    obs::counter("faultinj.trials").add(result.trials);
    obs::counter("faultinj.successes").add(result.successes);
  }
  return result;
}

std::uint64_t simulate_longevity(double days, std::size_t machines,
                                 double true_rate_per_day,
                                 stats::RandomEngine& rng) {
  if (!(days > 0.0) || machines == 0 || true_rate_per_day < 0.0) {
    throw std::invalid_argument("simulate_longevity: bad arguments");
  }
  // Failures arrive as a Poisson process over the machine-days.
  const double exposure = days * static_cast<double>(machines);
  std::uint64_t failures = 0;
  if (true_rate_per_day == 0.0) return 0;
  double t = rng.exponential(true_rate_per_day);
  while (t < exposure) {
    ++failures;
    t += rng.exponential(true_rate_per_day);
  }
  return failures;
}

}  // namespace rascal::faultinj

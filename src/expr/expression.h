// Parsed rate expression with value semantics.
//
//   auto e = Expression::parse("2*La_hadb*(1-FIR)");
//   double rate = e.evaluate(params);
//
// Copies share the immutable AST, so Expressions are cheap to store in
// model transition tables.
#pragma once

#include <set>
#include <string>

#include "expr/ast.h"
#include "expr/parameter_set.h"

namespace rascal::expr {

class Expression {
 public:
  /// Constant expression (value literal).
  explicit Expression(double constant);

  /// Parses `source`; throws ParseError on malformed input and
  /// std::invalid_argument for unknown functions / wrong arity.
  [[nodiscard]] static Expression parse(const std::string& source);

  /// Evaluates against parameter bindings; throws
  /// UnknownParameterError for unbound variables.
  [[nodiscard]] double evaluate(const ParameterSet& params) const;

  /// All variable names referenced by the expression.
  [[nodiscard]] std::set<std::string> variables() const;

  /// Symbolic partial derivative d(this)/d(variable), lightly
  /// simplified.  Throws std::domain_error when the expression uses
  /// abs/min/max of the variable (not differentiable).
  [[nodiscard]] Expression derivative(const std::string& variable) const;

  /// Canonical (fully parenthesized) rendering; parse(to_string()) is
  /// semantically identical to the original.
  [[nodiscard]] std::string to_string() const;

  /// Original source text ("" for programmatic constants).
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

 private:
  Expression(NodePtr root, std::string source);

  NodePtr root_;
  std::string source_;
};

}  // namespace rascal::expr

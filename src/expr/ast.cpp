#include "expr/ast.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rascal::expr {

std::string NumberNode::to_string() const {
  std::ostringstream os;
  os << value_;
  return os.str();
}

namespace {

// ---- light simplification used by the symbolic derivative ----------

bool is_constant(const NodePtr& node, double value) {
  const auto* number = dynamic_cast<const NumberNode*>(node.get());
  if (number == nullptr) return false;
  static const ParameterSet kEmpty;
  return number->evaluate(kEmpty) == value;
}

NodePtr constant(double value) {
  return std::make_shared<NumberNode>(value);
}

NodePtr sum(NodePtr a, NodePtr b) {
  if (is_constant(a, 0.0)) return b;
  if (is_constant(b, 0.0)) return a;
  return std::make_shared<BinaryNode>(BinaryOp::kAdd, std::move(a),
                                      std::move(b));
}

NodePtr difference(NodePtr a, NodePtr b) {
  if (is_constant(b, 0.0)) return a;
  if (is_constant(a, 0.0)) {
    return std::make_shared<NegateNode>(std::move(b));
  }
  return std::make_shared<BinaryNode>(BinaryOp::kSubtract, std::move(a),
                                      std::move(b));
}

NodePtr product(NodePtr a, NodePtr b) {
  if (is_constant(a, 0.0) || is_constant(b, 0.0)) return constant(0.0);
  if (is_constant(a, 1.0)) return b;
  if (is_constant(b, 1.0)) return a;
  return std::make_shared<BinaryNode>(BinaryOp::kMultiply, std::move(a),
                                      std::move(b));
}

NodePtr quotient(NodePtr a, NodePtr b) {
  if (is_constant(a, 0.0)) return constant(0.0);
  if (is_constant(b, 1.0)) return a;
  return std::make_shared<BinaryNode>(BinaryOp::kDivide, std::move(a),
                                      std::move(b));
}

NodePtr power(NodePtr base, NodePtr exponent) {
  if (is_constant(exponent, 1.0)) return base;
  if (is_constant(exponent, 0.0)) return constant(1.0);
  return std::make_shared<BinaryNode>(BinaryOp::kPower, std::move(base),
                                      std::move(exponent));
}

bool depends_on(const Node& node, const std::string& variable) {
  std::set<std::string> vars;
  node.collect_variables(vars);
  return vars.count(variable) != 0;
}

}  // namespace

NodePtr NumberNode::differentiate(const std::string&) const {
  return constant(0.0);
}

NodePtr VariableNode::differentiate(const std::string& variable) const {
  return constant(name_ == variable ? 1.0 : 0.0);
}

NodePtr NegateNode::differentiate(const std::string& variable) const {
  return std::make_shared<NegateNode>(operand_->differentiate(variable));
}

NodePtr BinaryNode::differentiate(const std::string& variable) const {
  NodePtr du = lhs_->differentiate(variable);
  NodePtr dv = rhs_->differentiate(variable);
  switch (op_) {
    case BinaryOp::kAdd:
      return sum(std::move(du), std::move(dv));
    case BinaryOp::kSubtract:
      return difference(std::move(du), std::move(dv));
    case BinaryOp::kMultiply:
      // (uv)' = u'v + uv'.
      return sum(product(std::move(du), rhs_),
                 product(lhs_, std::move(dv)));
    case BinaryOp::kDivide:
      // (u/v)' = (u'v - uv') / v^2.
      return quotient(
          difference(product(std::move(du), rhs_),
                     product(lhs_, std::move(dv))),
          product(rhs_, rhs_));
    case BinaryOp::kPower: {
      // General case: (u^v)' = u^v * (v' ln u + v u' / u); the two
      // common special cases keep the tree small.
      const bool base_depends = depends_on(*lhs_, variable);
      const bool exp_depends = depends_on(*rhs_, variable);
      if (!base_depends && !exp_depends) return constant(0.0);
      if (!exp_depends) {
        // v constant: v * u^(v-1) * u'.
        NodePtr v_minus_1 = difference(rhs_, constant(1.0));
        return product(product(rhs_, power(lhs_, std::move(v_minus_1))),
                       std::move(du));
      }
      NodePtr ln_u = std::make_shared<CallNode>(
          "log", std::vector<NodePtr>{lhs_});
      NodePtr term = sum(product(std::move(dv), std::move(ln_u)),
                         quotient(product(rhs_, std::move(du)), lhs_));
      return product(power(lhs_, rhs_), std::move(term));
    }
  }
  throw std::logic_error("BinaryNode::differentiate: unreachable");
}

NodePtr CallNode::differentiate(const std::string& variable) const {
  const auto chain = [&](NodePtr outer_derivative) {
    return product(std::move(outer_derivative),
                   args_[0]->differentiate(variable));
  };
  if (function_ == "exp") {
    return chain(std::make_shared<CallNode>("exp", args_));
  }
  if (function_ == "log") {
    return chain(quotient(constant(1.0), args_[0]));
  }
  if (function_ == "sqrt") {
    NodePtr self = std::make_shared<CallNode>("sqrt", args_);
    return chain(quotient(constant(1.0),
                          product(constant(2.0), std::move(self))));
  }
  if (function_ == "pow") {
    return std::make_shared<BinaryNode>(BinaryOp::kPower, args_[0],
                                        args_[1])
        ->differentiate(variable);
  }
  // abs/min/max: only differentiable when independent of the variable.
  for (const NodePtr& arg : args_) {
    if (depends_on(*arg, variable)) {
      throw std::domain_error("expression: '" + function_ +
                              "' is not differentiable in '" + variable +
                              "'");
    }
  }
  return constant(0.0);
}

double BinaryNode::evaluate(const ParameterSet& params) const {
  const double a = lhs_->evaluate(params);
  const double b = rhs_->evaluate(params);
  switch (op_) {
    case BinaryOp::kAdd: return a + b;
    case BinaryOp::kSubtract: return a - b;
    case BinaryOp::kMultiply: return a * b;
    case BinaryOp::kDivide:
      if (b == 0.0) {
        throw std::domain_error("expression: division by zero in " +
                                to_string());
      }
      return a / b;
    case BinaryOp::kPower: return std::pow(a, b);
  }
  throw std::logic_error("BinaryNode: unreachable");
}

std::string BinaryNode::to_string() const {
  const char* op = "?";
  switch (op_) {
    case BinaryOp::kAdd: op = "+"; break;
    case BinaryOp::kSubtract: op = "-"; break;
    case BinaryOp::kMultiply: op = "*"; break;
    case BinaryOp::kDivide: op = "/"; break;
    case BinaryOp::kPower: op = "^"; break;
  }
  return "(" + lhs_->to_string() + op + rhs_->to_string() + ")";
}

namespace {

struct Builtin {
  const char* name;
  std::size_t arity;
};

constexpr Builtin kBuiltins[] = {
    {"exp", 1}, {"log", 1}, {"sqrt", 1}, {"abs", 1},
    {"min", 2}, {"max", 2}, {"pow", 2},
};

}  // namespace

CallNode::CallNode(std::string function, std::vector<NodePtr> args)
    : function_(std::move(function)), args_(std::move(args)) {
  if (!is_builtin(function_)) {
    throw std::invalid_argument("expression: unknown function '" + function_ +
                                "'");
  }
  if (args_.size() != builtin_arity(function_)) {
    throw std::invalid_argument("expression: function '" + function_ +
                                "' expects " +
                                std::to_string(builtin_arity(function_)) +
                                " argument(s)");
  }
}

bool CallNode::is_builtin(const std::string& name) {
  for (const Builtin& b : kBuiltins) {
    if (name == b.name) return true;
  }
  return false;
}

std::size_t CallNode::builtin_arity(const std::string& name) {
  for (const Builtin& b : kBuiltins) {
    if (name == b.name) return b.arity;
  }
  throw std::invalid_argument("expression: unknown function '" + name + "'");
}

double CallNode::evaluate(const ParameterSet& params) const {
  const auto arg = [&](std::size_t i) { return args_[i]->evaluate(params); };
  if (function_ == "exp") return std::exp(arg(0));
  if (function_ == "log") {
    const double x = arg(0);
    if (!(x > 0.0)) {
      throw std::domain_error("expression: log of non-positive value");
    }
    return std::log(x);
  }
  if (function_ == "sqrt") {
    const double x = arg(0);
    if (x < 0.0) {
      throw std::domain_error("expression: sqrt of negative value");
    }
    return std::sqrt(x);
  }
  if (function_ == "abs") return std::abs(arg(0));
  if (function_ == "min") return std::min(arg(0), arg(1));
  if (function_ == "max") return std::max(arg(0), arg(1));
  if (function_ == "pow") return std::pow(arg(0), arg(1));
  throw std::logic_error("CallNode: unreachable");
}

std::string CallNode::to_string() const {
  std::string out = function_ + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    out += args_[i]->to_string();
    if (i + 1 < args_.size()) out += ",";
  }
  return out + ")";
}

}  // namespace rascal::expr

// Named model parameters.  A ParameterSet binds the symbols appearing
// in rate expressions (e.g. "La_hadb", "FIR") to numeric values; the
// analysis layer perturbs these bindings for parametric sweeps and
// uncertainty sampling without touching model structure.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rascal::expr {

/// Thrown when an expression references a parameter that has no
/// binding.
class UnknownParameterError : public std::runtime_error {
 public:
  explicit UnknownParameterError(const std::string& name)
      : std::runtime_error("unknown parameter: " + name), name_(name) {}
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

class ParameterSet {
 public:
  ParameterSet() = default;
  ParameterSet(std::initializer_list<std::pair<const std::string, double>> init)
      : values_(init) {}

  /// Sets or overwrites a binding; returns *this for chaining.
  ParameterSet& set(const std::string& name, double value);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Throws UnknownParameterError when absent.
  [[nodiscard]] double get(const std::string& name) const;

  [[nodiscard]] double get_or(const std::string& name,
                              double fallback) const;

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Sorted parameter names.
  [[nodiscard]] std::vector<std::string> names() const;

  /// New set with `overrides` applied on top of *this.
  [[nodiscard]] ParameterSet with(const ParameterSet& overrides) const;

  [[nodiscard]] auto begin() const noexcept { return values_.begin(); }
  [[nodiscard]] auto end() const noexcept { return values_.end(); }

  bool operator==(const ParameterSet&) const = default;

 private:
  std::map<std::string, double> values_;
};

}  // namespace rascal::expr

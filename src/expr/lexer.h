// Tokenizer for rate expressions such as "2*La_hadb*(1-FIR)".
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace rascal::expr {

enum class TokenKind {
  kNumber,
  kIdentifier,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kCaret,
  kLeftParen,
  kRightParen,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t position = 0;  // byte offset in the source, for messages
};

/// Thrown on any lexical or syntactic problem; carries the offending
/// position.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " at position " +
                           std::to_string(position)),
        position_(position) {}
  [[nodiscard]] std::size_t position() const noexcept { return position_; }

 private:
  std::size_t position_;
};

/// Tokenizes the whole input; the final token is always kEnd.
/// Identifiers are [A-Za-z_][A-Za-z0-9_]*; numbers accept decimal and
/// scientific notation.  Throws ParseError on unexpected characters.
[[nodiscard]] std::vector<Token> tokenize(const std::string& source);

}  // namespace rascal::expr

// Abstract syntax tree for rate expressions.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "expr/parameter_set.h"

namespace rascal::expr {

/// Immutable AST node.  Nodes are shared between copies of an
/// Expression, hence shared_ptr<const Node>.
class Node;
using NodePtr = std::shared_ptr<const Node>;

class Node {
 public:
  virtual ~Node() = default;
  [[nodiscard]] virtual double evaluate(const ParameterSet& params) const = 0;
  virtual void collect_variables(std::set<std::string>& out) const = 0;
  [[nodiscard]] virtual std::string to_string() const = 0;
  /// Symbolic partial derivative with respect to `variable`.  Throws
  /// std::domain_error for non-differentiable operations (abs, min,
  /// max) whose argument depends on the variable.
  [[nodiscard]] virtual NodePtr differentiate(
      const std::string& variable) const = 0;
};

class NumberNode final : public Node {
 public:
  explicit NumberNode(double value) : value_(value) {}
  [[nodiscard]] double evaluate(const ParameterSet&) const override {
    return value_;
  }
  void collect_variables(std::set<std::string>&) const override {}
  [[nodiscard]] std::string to_string() const override;
  [[nodiscard]] NodePtr differentiate(const std::string&) const override;

 private:
  double value_;
};

class VariableNode final : public Node {
 public:
  explicit VariableNode(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] double evaluate(const ParameterSet& params) const override {
    return params.get(name_);
  }
  void collect_variables(std::set<std::string>& out) const override {
    out.insert(name_);
  }
  [[nodiscard]] std::string to_string() const override { return name_; }
  [[nodiscard]] NodePtr differentiate(
      const std::string& variable) const override;

 private:
  std::string name_;
};

enum class BinaryOp { kAdd, kSubtract, kMultiply, kDivide, kPower };

class BinaryNode final : public Node {
 public:
  BinaryNode(BinaryOp op, NodePtr lhs, NodePtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] double evaluate(const ParameterSet& params) const override;
  void collect_variables(std::set<std::string>& out) const override {
    lhs_->collect_variables(out);
    rhs_->collect_variables(out);
  }
  [[nodiscard]] std::string to_string() const override;
  [[nodiscard]] NodePtr differentiate(
      const std::string& variable) const override;

 private:
  BinaryOp op_;
  NodePtr lhs_;
  NodePtr rhs_;
};

class NegateNode final : public Node {
 public:
  explicit NegateNode(NodePtr operand) : operand_(std::move(operand)) {}
  [[nodiscard]] double evaluate(const ParameterSet& params) const override {
    return -operand_->evaluate(params);
  }
  void collect_variables(std::set<std::string>& out) const override {
    operand_->collect_variables(out);
  }
  [[nodiscard]] std::string to_string() const override {
    return "(-" + operand_->to_string() + ")";
  }
  [[nodiscard]] NodePtr differentiate(
      const std::string& variable) const override;

 private:
  NodePtr operand_;
};

/// Built-in functions: exp, log, sqrt, abs, min, max, pow.
class CallNode final : public Node {
 public:
  CallNode(std::string function, std::vector<NodePtr> args);
  [[nodiscard]] double evaluate(const ParameterSet& params) const override;
  void collect_variables(std::set<std::string>& out) const override {
    for (const NodePtr& a : args_) a->collect_variables(out);
  }
  [[nodiscard]] std::string to_string() const override;
  [[nodiscard]] NodePtr differentiate(
      const std::string& variable) const override;

  /// True when `name` is a known builtin.
  [[nodiscard]] static bool is_builtin(const std::string& name);
  /// Arity of a builtin; throws std::invalid_argument when unknown.
  [[nodiscard]] static std::size_t builtin_arity(const std::string& name);

 private:
  std::string function_;
  std::vector<NodePtr> args_;
};

}  // namespace rascal::expr

#include "expr/expression.h"

#include <sstream>

#include "expr/lexer.h"

namespace rascal::expr {

namespace {

// Recursive-descent parser.
//
//   expression := term (('+'|'-') term)*
//   term       := unary (('*'|'/') unary)*
//   unary      := '-' unary | power
//   power      := primary ('^' unary)?        (right associative)
//   primary    := NUMBER | IDENT ['(' args ')'] | '(' expression ')'
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  NodePtr parse() {
    NodePtr root = parse_expression();
    expect(TokenKind::kEnd, "end of input");
    return root;
  }

 private:
  // Deeply nested input ("((((..." or "----...") otherwise recurses
  // once per level and overflows the stack; depth-bounded evaluation
  // is also what keeps the recursive Node walks (evaluate,
  // differentiate, to_string) safe on every tree this parser built.
  static constexpr std::size_t kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        throw ParseError("expression nests deeper than " +
                             std::to_string(kMaxDepth) + " levels",
                         parser_.peek().position);
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };

  const Token& peek() const { return tokens_[pos_]; }
  Token advance() { return tokens_[pos_++]; }

  bool match(TokenKind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(TokenKind kind, const std::string& what) {
    if (!match(kind)) {
      throw ParseError("expected " + what, peek().position);
    }
  }

  NodePtr parse_expression() {
    const DepthGuard guard(*this);
    NodePtr lhs = parse_term();
    while (true) {
      if (match(TokenKind::kPlus)) {
        lhs = std::make_shared<BinaryNode>(BinaryOp::kAdd, lhs, parse_term());
      } else if (match(TokenKind::kMinus)) {
        lhs = std::make_shared<BinaryNode>(BinaryOp::kSubtract, lhs,
                                           parse_term());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parse_term() {
    NodePtr lhs = parse_unary();
    while (true) {
      if (match(TokenKind::kStar)) {
        lhs = std::make_shared<BinaryNode>(BinaryOp::kMultiply, lhs,
                                           parse_unary());
      } else if (match(TokenKind::kSlash)) {
        lhs = std::make_shared<BinaryNode>(BinaryOp::kDivide, lhs,
                                           parse_unary());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parse_unary() {
    const DepthGuard guard(*this);
    if (match(TokenKind::kMinus)) {
      return std::make_shared<NegateNode>(parse_unary());
    }
    return parse_power();
  }

  NodePtr parse_power() {
    NodePtr base = parse_primary();
    if (match(TokenKind::kCaret)) {
      // Right associative: 2^3^2 == 2^(3^2).
      return std::make_shared<BinaryNode>(BinaryOp::kPower, base,
                                          parse_unary());
    }
    return base;
  }

  NodePtr parse_primary() {
    const Token token = advance();
    switch (token.kind) {
      case TokenKind::kNumber:
        return std::make_shared<NumberNode>(token.number);
      case TokenKind::kIdentifier: {
        if (peek().kind == TokenKind::kLeftParen) {
          ++pos_;  // consume '('
          std::vector<NodePtr> args;
          if (peek().kind != TokenKind::kRightParen) {
            args.push_back(parse_expression());
            while (match(TokenKind::kComma)) {
              args.push_back(parse_expression());
            }
          }
          expect(TokenKind::kRightParen, "')'");
          return std::make_shared<CallNode>(token.text, std::move(args));
        }
        return std::make_shared<VariableNode>(token.text);
      }
      case TokenKind::kLeftParen: {
        NodePtr inner = parse_expression();
        expect(TokenKind::kRightParen, "')'");
        return inner;
      }
      default:
        throw ParseError("expected a number, name, or '('", token.position);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Expression::Expression(double constant)
    : root_(std::make_shared<NumberNode>(constant)) {
  std::ostringstream os;
  os << constant;
  source_ = os.str();
}

Expression::Expression(NodePtr root, std::string source)
    : root_(std::move(root)), source_(std::move(source)) {}

Expression Expression::parse(const std::string& source) {
  Parser parser(tokenize(source));
  return Expression(parser.parse(), source);
}

double Expression::evaluate(const ParameterSet& params) const {
  return root_->evaluate(params);
}

std::set<std::string> Expression::variables() const {
  std::set<std::string> out;
  root_->collect_variables(out);
  return out;
}

Expression Expression::derivative(const std::string& variable) const {
  NodePtr d = root_->differentiate(variable);
  std::string source = "d(" + source_ + ")/d" + variable;
  return Expression(std::move(d), std::move(source));
}

std::string Expression::to_string() const { return root_->to_string(); }

}  // namespace rascal::expr

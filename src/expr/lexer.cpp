#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

namespace rascal::expr {

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();
  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      const char* begin = source.c_str() + i;
      char* end = nullptr;
      const double value = std::strtod(begin, &end);
      if (end == begin) {
        throw ParseError("invalid number", start);
      }
      i += static_cast<std::size_t>(end - begin);
      tokens.push_back({TokenKind::kNumber,
                        source.substr(start, i - start), value, start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      tokens.push_back(
          {TokenKind::kIdentifier, source.substr(i, j - i), 0.0, start});
      i = j;
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '^': kind = TokenKind::kCaret; break;
      case '(': kind = TokenKind::kLeftParen; break;
      case ')': kind = TokenKind::kRightParen; break;
      case ',': kind = TokenKind::kComma; break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         start);
    }
    tokens.push_back({kind, std::string(1, c), 0.0, start});
    ++i;
  }
  tokens.push_back({TokenKind::kEnd, "", 0.0, n});
  return tokens;
}

}  // namespace rascal::expr

#include "expr/parameter_set.h"

namespace rascal::expr {

ParameterSet& ParameterSet::set(const std::string& name, double value) {
  values_[name] = value;
  return *this;
}

bool ParameterSet::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

double ParameterSet::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) throw UnknownParameterError(name);
  return it->second;
}

double ParameterSet::get_or(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::vector<std::string> ParameterSet::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

ParameterSet ParameterSet::with(const ParameterSet& overrides) const {
  ParameterSet merged = *this;
  for (const auto& [name, value] : overrides) merged.set(name, value);
  return merged;
}

}  // namespace rascal::expr

// Plain-text tables, used by the bench harness to print the paper's
// Tables 2 and 3 alongside our measured values.
#pragma once

#include <string>
#include <vector>

namespace rascal::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.  Throws
  /// std::invalid_argument otherwise.
  void add_row(std::vector<std::string> cells);

  /// Renders with column-aligned cells and a header rule.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats an availability as a percentage with `decimals` fractional
/// digits, e.g. format_percent(0.9999933, 5) == "99.99933%".
[[nodiscard]] std::string format_percent(double value, int decimals);

/// Fixed-precision decimal.
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Significant-figure formatting for wide-range values.
[[nodiscard]] std::string format_general(double value, int significant);

}  // namespace rascal::report

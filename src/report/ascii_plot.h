// Terminal plots: line charts for the parametric sweeps (Figures 5-6)
// and scatter charts for the uncertainty snapshots (Figures 7-8).
#pragma once

#include <string>
#include <vector>

namespace rascal::report {

struct PlotOptions {
  std::size_t width = 72;   // plot area columns
  std::size_t height = 20;  // plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Line plot of y over x.  xs and ys must be equal-length and
/// non-empty; throws std::invalid_argument otherwise.
[[nodiscard]] std::string line_plot(const std::vector<double>& xs,
                                    const std::vector<double>& ys,
                                    const PlotOptions& options = {});

/// Scatter plot of (x, y) points.
[[nodiscard]] std::string scatter_plot(const std::vector<double>& xs,
                                       const std::vector<double>& ys,
                                       const PlotOptions& options = {});

}  // namespace rascal::report

#include "report/diagnostics.h"

#include <cstdio>

namespace rascal::report {

namespace {

std::string plural(std::size_t n, const char* word) {
  return std::to_string(n) + " " + word + (n == 1 ? "" : "s");
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_field(std::string& out, const char* key,
                  const std::string& value, bool& first) {
  if (value.empty()) return;
  if (!first) out += ", ";
  first = false;
  out += '"';
  out += key;
  out += "\": \"" + json_escape(value) + '"';
}

}  // namespace

std::string render_diagnostics_text(const lint::LintReport& report) {
  std::string out;
  for (const lint::Diagnostic& d : report) {
    const std::string where = d.location.to_string();
    if (!where.empty()) out += where + ": ";
    out += std::string(lint::severity_name(d.severity)) + " [" + d.code +
           "] " + d.message + "\n";
    if (!d.fix_hint.empty()) out += "  hint: " + d.fix_hint + "\n";
  }
  out += plural(report.count(lint::Severity::kError), "error") + ", " +
         plural(report.count(lint::Severity::kWarning), "warning") + ", " +
         plural(report.count(lint::Severity::kNote), "note") + "\n";
  return out;
}

std::string render_diagnostics_json(const lint::LintReport& report) {
  std::string out = "{\"diagnostics\": [";
  bool first_diag = true;
  for (const lint::Diagnostic& d : report) {
    if (!first_diag) out += ", ";
    first_diag = false;
    out += "{\"code\": \"" + json_escape(d.code) + "\", \"severity\": \"";
    out += lint::severity_name(d.severity);
    out += "\", \"message\": \"" + json_escape(d.message) + '"';
    if (!d.fix_hint.empty()) {
      out += ", \"fix_hint\": \"" + json_escape(d.fix_hint) + '"';
    }
    if (!d.location.empty()) {
      out += ", \"location\": {";
      bool first_field = true;
      append_field(out, "state", d.location.state, first_field);
      append_field(out, "from", d.location.from, first_field);
      append_field(out, "to", d.location.to, first_field);
      append_field(out, "parameter", d.location.parameter, first_field);
      append_field(out, "file", d.location.file, first_field);
      if (d.location.line > 0) {
        if (!first_field) out += ", ";
        first_field = false;
        out += "\"line\": " + std::to_string(d.location.line);
        if (d.location.column > 0) {
          out += ", \"column\": " + std::to_string(d.location.column);
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "], \"errors\": " +
         std::to_string(report.count(lint::Severity::kError)) +
         ", \"warnings\": " +
         std::to_string(report.count(lint::Severity::kWarning)) +
         ", \"notes\": " +
         std::to_string(report.count(lint::Severity::kNote)) + "}\n";
  return out;
}

}  // namespace rascal::report

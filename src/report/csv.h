// Minimal CSV emission (RFC 4180 quoting) for exporting sweep and
// uncertainty results to external plotting tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rascal::report {

/// Quotes a field when it contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Writes a header plus rows.  Throws std::invalid_argument when a
/// row's arity differs from the header's.
void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace rascal::report

#include "report/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rascal::report {

namespace {

struct Bounds {
  double x_min, x_max, y_min, y_max;
};

Bounds bounds_of(const std::vector<double>& xs, const std::vector<double>& ys) {
  Bounds b{xs[0], xs[0], ys[0], ys[0]};
  for (double x : xs) {
    b.x_min = std::min(b.x_min, x);
    b.x_max = std::max(b.x_max, x);
  }
  for (double y : ys) {
    b.y_min = std::min(b.y_min, y);
    b.y_max = std::max(b.y_max, y);
  }
  // Degenerate ranges render as a centered band.
  if (b.x_min == b.x_max) {
    b.x_min -= 0.5;
    b.x_max += 0.5;
  }
  if (b.y_min == b.y_max) {
    b.y_min -= 0.5;
    b.y_max += 0.5;
  }
  return b;
}

std::string render(const std::vector<double>& xs, const std::vector<double>& ys,
                   const PlotOptions& options, char mark) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("plot: xs/ys must be equal-length, non-empty");
  }
  const std::size_t w = std::max<std::size_t>(options.width, 16);
  const std::size_t h = std::max<std::size_t>(options.height, 6);
  const Bounds b = bounds_of(xs, ys);

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double fx = (xs[i] - b.x_min) / (b.x_max - b.x_min);
    const double fy = (ys[i] - b.y_min) / (b.y_max - b.y_min);
    const auto col = static_cast<std::size_t>(
        std::lround(fx * static_cast<double>(w - 1)));
    const auto row = static_cast<std::size_t>(
        std::lround((1.0 - fy) * static_cast<double>(h - 1)));
    grid[row][col] = mark;
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << "\n";
  if (!options.y_label.empty()) os << options.y_label << "\n";
  const auto y_tick = [&](std::size_t row) {
    const double fy =
        1.0 - static_cast<double>(row) / static_cast<double>(h - 1);
    return b.y_min + fy * (b.y_max - b.y_min);
  };
  for (std::size_t row = 0; row < h; ++row) {
    os << std::setw(12) << std::setprecision(7) << y_tick(row) << " |"
       << grid[row] << "\n";
  }
  os << std::string(13, ' ') << "+" << std::string(w, '-') << "\n";
  os << std::string(14, ' ') << std::setprecision(6) << b.x_min
     << std::string(w > 24 ? w - 24 : 1, ' ') << b.x_max;
  if (!options.x_label.empty()) os << "  " << options.x_label;
  os << "\n";
  return os.str();
}

}  // namespace

std::string line_plot(const std::vector<double>& xs,
                      const std::vector<double>& ys,
                      const PlotOptions& options) {
  return render(xs, ys, options, '*');
}

std::string scatter_plot(const std::vector<double>& xs,
                         const std::vector<double>& ys,
                         const PlotOptions& options) {
  return render(xs, ys, options, '.');
}

}  // namespace rascal::report

#include "report/csv.h"

#include <ostream>
#include <stdexcept>

namespace rascal::report {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

void write_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    os << csv_escape(row[i]);
    if (i + 1 < row.size()) os << ',';
  }
  os << '\n';
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  write_row(os, header);
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      throw std::invalid_argument("write_csv: row arity mismatch");
    }
    write_row(os, row);
  }
}

}  // namespace rascal::report

#include "report/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rascal::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: empty header");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " ";
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_percent(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value * 100.0 << "%";
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string format_general(double value, int significant) {
  std::ostringstream os;
  os << std::setprecision(significant) << value;
  return os.str();
}

}  // namespace rascal::report

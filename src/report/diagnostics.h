// Rendering for lint diagnostics (lint/diagnostic.h): a compiler-style
// text form for terminals and a machine-readable JSON form for CI.
#pragma once

#include <string>

#include "lint/diagnostic.h"

namespace rascal::report {

/// Compiler-style text, one diagnostic per line plus an indented fix
/// hint, followed by a severity tally:
///
///   model.rasc:12:8: error [R025] rate of 'Ok -> 2_Down' evaluates
///   to -0.5 under the supplied parameters
///     hint: rates must be >= 0; check for a sign flip in '...'
///   2 errors, 1 warning, 0 notes
[[nodiscard]] std::string render_diagnostics_text(
    const lint::LintReport& report);

/// Deterministic JSON (diagnostics in report order, keys in fixed
/// order, strings escaped):
///
///   {"diagnostics": [{"code": "R025", "severity": "error",
///    "message": "...", "fix_hint": "...", "location": {...}}, ...],
///    "errors": 2, "warnings": 1, "notes": 0}
[[nodiscard]] std::string render_diagnostics_json(
    const lint::LintReport& report);

}  // namespace rascal::report

#include "resil/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "obs/obs.h"
#include "resil/chaos.h"

namespace rascal::resil {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr char kFormatTag[] = "rascal-checkpoint-v1";

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= kFnvPrime;
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// JSON string escaping for failure notes: arbitrary what() text must
// round-trip so a resumed run reports byte-identical failure records.
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

// Strict sequential scanner over the exact format serialize() emits.
// Anything unexpected raises CheckpointError: a checkpoint is either
// bit-exactly loadable or rejected, never half-parsed.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      throw CheckpointError("checkpoint: malformed file (expected '" +
                            std::string(literal) + "' at byte " +
                            std::to_string(pos_) + ")");
    }
    pos_ += literal.size();
  }

  [[nodiscard]] bool consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::uint64_t parse_u64() {
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      throw CheckpointError("checkpoint: malformed file (expected digit at "
                            "byte " + std::to_string(pos_) + ")");
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    return value;
  }

  std::string parse_string() {
    expect("\"");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw CheckpointError("checkpoint: truncated \\u escape");
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4U;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else {
                throw CheckpointError("checkpoint: bad \\u escape");
              }
            }
            out += static_cast<char>(code);
            break;
          }
          default:
            throw CheckpointError("checkpoint: unknown escape in string");
        }
      } else {
        out += c;
      }
    }
    expect("\"");
    return out;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_hex16(const std::string& text, const char* what) {
  if (text.size() != 16) {
    throw CheckpointError(std::string("checkpoint: bad ") + what);
  }
  std::uint64_t value = 0;
  for (const char h : text) {
    value <<= 4U;
    if (h >= '0' && h <= '9') value |= static_cast<std::uint64_t>(h - '0');
    else if (h >= 'a' && h <= 'f') {
      value |= static_cast<std::uint64_t>(h - 'a' + 10);
    } else {
      throw CheckpointError(std::string("checkpoint: bad ") + what);
    }
  }
  return value;
}

std::size_t flush_cadence_from_env() {
  const char* text = std::getenv("RASCAL_CHECKPOINT_EVERY");
  if (text == nullptr || *text == '\0') return 32;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value == 0) return 32;
  return static_cast<std::size_t>(value);
}

}  // namespace

DigestBuilder& DigestBuilder::add_u64(std::uint64_t value) {
  for (int k = 0; k < 8; ++k) {
    hash_ ^= (value >> (8 * k)) & 0xffULL;
    hash_ *= kFnvPrime;
  }
  return *this;
}

DigestBuilder& DigestBuilder::add_f64(double value) {
  return add_u64(f64_bits(value));
}

DigestBuilder& DigestBuilder::add_str(std::string_view text) {
  add_u64(text.size());
  for (const char c : text) {
    hash_ ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash_ *= kFnvPrime;
  }
  return *this;
}

Checkpointer::Checkpointer(std::string path, std::string kind,
                           std::uint64_t digest, std::uint64_t total)
    : path_(std::move(path)),
      kind_(std::move(kind)),
      digest_(digest),
      total_(total),
      flush_every_(flush_cadence_from_env()) {}

void Checkpointer::set_flush_every(std::size_t every) noexcept {
  flush_every_ = every > 0 ? every : 1;
}

void Checkpointer::set_write_failure_policy(
    WriteFailurePolicy policy) noexcept {
  write_failure_policy_ = policy;
}

std::uint64_t Checkpointer::write_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return write_failures_;
}

std::size_t Checkpointer::resume_from_disk() {
  if (!checkpoint_file_exists(path_)) return 0;
  CheckpointFile file = load_checkpoint_file(path_);
  if (file.kind != kind_) {
    throw CheckpointError("checkpoint: kind mismatch (file is '" + file.kind +
                          "', this run is '" + kind_ + "')");
  }
  if (file.digest != digest_) {
    throw CheckpointError(
        "checkpoint: run-configuration digest mismatch — the checkpoint was "
        "written by a run with different seed/count/range settings");
  }
  if (file.total != total_) {
    throw CheckpointError("checkpoint: total mismatch (file has " +
                          std::to_string(file.total) + ", this run expects " +
                          std::to_string(total_) + ")");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (CheckpointEntry& entry : file.entries) {
    if (entry.index >= total_) {
      throw CheckpointError("checkpoint: entry index out of range");
    }
    entries_[entry.index] = std::move(entry);
  }
  if (obs::enabled()) {
    obs::counter("resil.checkpoint.restored").add(entries_.size());
  }
  return entries_.size();
}

void Checkpointer::record(CheckpointEntry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_[entry.index] = std::move(entry);
  ++unflushed_;
  if (unflushed_ >= flush_every_) flush_locked();
}

void Checkpointer::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

std::vector<CheckpointEntry> Checkpointer::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CheckpointEntry> out;
  out.reserve(entries_.size());
  for (const auto& [index, entry] : entries_) out.push_back(entry);
  return out;
}

std::size_t Checkpointer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string Checkpointer::serialize_locked() const {
  std::string body = "{\"format\":\"";
  body += kFormatTag;
  body += "\",\"kind\":\"";
  append_escaped(body, kind_);
  body += "\",\"digest\":\"" + hex16(digest_) + "\",\"total\":" +
          std::to_string(total_) + ",\"entries\":[";
  bool first = true;
  for (const auto& [index, entry] : entries_) {
    if (!first) body += ',';
    first = false;
    body += "{\"i\":" + std::to_string(index) +
            ",\"s\":" + std::to_string(static_cast<unsigned>(entry.status)) +
            ",\"w\":[";
    for (std::size_t k = 0; k < entry.words.size(); ++k) {
      if (k > 0) body += ',';
      body += std::to_string(entry.words[k]);
    }
    body += ']';
    if (!entry.note.empty()) {
      body += ",\"note\":\"";
      append_escaped(body, entry.note);
      body += '"';
    }
    body += '}';
  }
  body += "]}";
  // The checksum covers every byte of the body; it is spliced in
  // before the closing brace so the file stays valid JSON.
  const std::string checksum = hex16(fnv1a(body));
  body.pop_back();  // drop '}'
  body += ",\"checksum\":\"" + checksum + "\"}\n";
  return body;
}

void Checkpointer::flush_locked() {
  // Any failure below keeps the entries in memory (unflushed_ stays
  // nonzero) so a later flush retries the full set; under kTolerate
  // the failure is counted instead of thrown.
  const auto fail = [this](const std::string& message) {
    if (write_failure_policy_ == WriteFailurePolicy::kAbort) {
      throw CheckpointError(message);
    }
    ++write_failures_;
    if (obs::enabled()) {
      obs::counter("resil.checkpoint.write_failures").add(1);
    }
  };
  if (chaos::enabled() && chaos::tick("checkpoint-write-fail")) {
    // Simulated ENOSPC on the tmp+rename write: nothing reached disk,
    // the previous checkpoint (if any) is still intact.
    fail("checkpoint: write to '" + path_ + ".tmp' failed (chaos)");
    return;
  }
  const std::string text = serialize_locked();
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      fail("checkpoint: cannot open '" + tmp + "' for writing");
      return;
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      fail("checkpoint: write to '" + tmp + "' failed");
      return;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    fail("checkpoint: rename to '" + path_ + "' failed");
    return;
  }
  unflushed_ = 0;
  if (obs::enabled()) {
    obs::counter("resil.checkpoint.flushes").add(1);
    obs::gauge("resil.checkpoint.entries")
        .set(static_cast<double>(entries_.size()));
  }
}

bool checkpoint_file_exists(const std::string& path) {
  struct stat info {};
  return ::stat(path.c_str(), &info) == 0 && S_ISREG(info.st_mode);
}

CheckpointFile load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }

  // Split off and verify the checksum before believing any field.
  const std::string marker = ",\"checksum\":\"";
  const std::size_t at = text.rfind(marker);
  if (at == std::string::npos || !text.ends_with("\"}")) {
    throw CheckpointError("checkpoint: '" + path +
                          "' is truncated or not a rascal checkpoint");
  }
  const std::string stored_hex =
      text.substr(at + marker.size(),
                  text.size() - at - marker.size() - 2);
  const std::uint64_t stored = parse_hex16(stored_hex, "checksum");
  const std::string body = text.substr(0, at) + "}";
  if (fnv1a(body) != stored) {
    throw CheckpointError("checkpoint: '" + path +
                          "' failed its checksum — the file is corrupt "
                          "(truncated or modified); delete it to start over");
  }

  Scanner scan(body);
  CheckpointFile file;
  scan.expect("{\"format\":\"");
  scan.expect(kFormatTag);
  scan.expect("\",\"kind\":");
  file.kind = scan.parse_string();
  scan.expect(",\"digest\":");
  file.digest = parse_hex16(scan.parse_string(), "digest");
  scan.expect(",\"total\":");
  file.total = scan.parse_u64();
  scan.expect(",\"entries\":[");
  if (!scan.consume("]")) {
    for (;;) {
      CheckpointEntry entry;
      scan.expect("{\"i\":");
      entry.index = scan.parse_u64();
      scan.expect(",\"s\":");
      const std::uint64_t status = scan.parse_u64();
      if (status != static_cast<std::uint64_t>(EntryStatus::kOk) &&
          status != static_cast<std::uint64_t>(EntryStatus::kFailed)) {
        throw CheckpointError("checkpoint: unknown entry status");
      }
      entry.status = static_cast<EntryStatus>(status);
      scan.expect(",\"w\":[");
      if (!scan.consume("]")) {
        for (;;) {
          entry.words.push_back(scan.parse_u64());
          if (scan.consume("]")) break;
          scan.expect(",");
        }
      }
      if (scan.consume(",\"note\":")) entry.note = scan.parse_string();
      scan.expect("}");
      file.entries.push_back(std::move(entry));
      if (scan.consume("]")) break;
      scan.expect(",");
    }
  }
  scan.expect("}");
  if (!scan.at_end()) {
    throw CheckpointError("checkpoint: trailing bytes after JSON body");
  }
  return file;
}

}  // namespace rascal::resil

#include "resil/cancel.h"

#include <chrono>
#include <csignal>

#include "obs/obs.h"

namespace rascal::resil {

namespace {

CancellationToken* g_signal_token = nullptr;

extern "C" void resil_signal_handler(int signal_number) {
  // Restore the default disposition first: a second SIGINT/SIGTERM
  // must kill a run whose drain is stuck, not be swallowed.
  std::signal(signal_number, SIG_DFL);
  if (g_signal_token != nullptr) {
    g_signal_token->request_cancel_signal(signal_number);
  }
}

}  // namespace

std::string to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kRequested: return "requested";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kSignal: return "signal";
  }
  return "unknown";
}

void CancellationToken::request_cancel(CancelReason reason) noexcept {
  int expected = static_cast<int>(CancelReason::kNone);
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_relaxed);
  if (obs::enabled()) obs::counter("resil.cancel.requests").add(1);
}

void CancellationToken::request_cancel_signal(int signal_number) noexcept {
  // Called from a signal handler: lock-free atomic stores only.
  signal_.store(signal_number, std::memory_order_relaxed);
  int expected = static_cast<int>(CancelReason::kNone);
  reason_.compare_exchange_strong(expected,
                                  static_cast<int>(CancelReason::kSignal),
                                  std::memory_order_relaxed);
}

void CancellationToken::set_deadline_after(double seconds) noexcept {
  const double clamped = seconds > 0.0 ? seconds : 0.0;
  const std::uint64_t delta_ns =
      static_cast<std::uint64_t>(clamped * 1e9);
  // 0 means "no deadline", so an already-expired deadline is stored as
  // the smallest armed value.
  std::uint64_t at = steady_now_ns() + delta_ns;
  if (at == 0) at = 1;
  deadline_ns_.store(at, std::memory_order_relaxed);
}

bool CancellationToken::cancelled() const noexcept {
  if (reason_.load(std::memory_order_relaxed) !=
      static_cast<int>(CancelReason::kNone)) {
    return true;
  }
  const std::uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && steady_now_ns() >= deadline) {
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected,
                                    static_cast<int>(CancelReason::kDeadline),
                                    std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::string CancellationToken::describe() const {
  switch (reason()) {
    case CancelReason::kNone: return "not cancelled";
    case CancelReason::kRequested: return "cancellation requested";
    case CancelReason::kDeadline: return "deadline exceeded";
    case CancelReason::kSignal: {
      const int sig = signal_number();
      if (sig == SIGINT) return "signal SIGINT";
      if (sig == SIGTERM) return "signal SIGTERM";
      return "signal " + std::to_string(sig);
    }
  }
  return "unknown";
}

void install_signal_handlers(CancellationToken& token) {
  g_signal_token = &token;
  std::signal(SIGINT, resil_signal_handler);
  std::signal(SIGTERM, resil_signal_handler);
}

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace rascal::resil

#include "resil/chaos.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rascal::resil::chaos {

namespace {

struct Site {
  std::string name;
  std::uint64_t key = 0;
};

struct State {
  std::mutex mutex;
  std::vector<Site> sites;
  std::map<std::string, std::uint64_t> tick_counts;
};

std::atomic<bool> g_enabled{false};

State& state() {
  static State instance;
  return instance;
}

std::vector<Site> parse_spec(std::string_view spec) {
  std::vector<Site> sites;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const std::size_t at = token.find('@');
    if (at == std::string_view::npos || at == 0 || at + 1 >= token.size()) {
      continue;  // malformed tokens are ignored, chaos is best-effort
    }
    Site site;
    site.name = std::string(token.substr(0, at));
    std::uint64_t key = 0;
    bool ok = true;
    for (const char c : token.substr(at + 1)) {
      if (c < '0' || c > '9') { ok = false; break; }
      key = key * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!ok) continue;
    site.key = key;
    sites.push_back(std::move(site));
  }
  return sites;
}

void init_from_env_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* spec = std::getenv("RASCAL_CHAOS");
    if (spec != nullptr && *spec != '\0') configure(spec);
  });
}

}  // namespace

void configure(std::string_view spec) {
  State& st = state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  st.sites = parse_spec(spec);
  st.tick_counts.clear();
  g_enabled.store(!st.sites.empty(), std::memory_order_relaxed);
}

bool enabled() noexcept {
  // The env spec must be folded in before the first answer: call
  // sites guard hooks with `enabled() &&`, and the very first such
  // guard in a process (e.g. worker-abandon at index 0) would
  // otherwise short-circuit before anything parsed RASCAL_CHAOS.
  init_from_env_once();
  return g_enabled.load(std::memory_order_relaxed);
}

bool fires_at(std::string_view site, std::uint64_t index) {
  init_from_env_once();
  if (!enabled()) return false;
  State& st = state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  for (const Site& armed : st.sites) {
    if (armed.name == site && armed.key == index) return true;
  }
  return false;
}

bool tick(std::string_view site) {
  init_from_env_once();
  if (!enabled()) return false;
  State& st = state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  const std::uint64_t occurrence = st.tick_counts[std::string(site)]++;
  for (const Site& armed : st.sites) {
    if (armed.name == site && armed.key == occurrence) return true;
  }
  return false;
}

void worker_hook(std::uint64_t index) {
  init_from_env_once();
  if (!enabled()) return;
  if (fires_at("sigterm", index)) {
    std::raise(SIGTERM);
    return;  // cooperative handler installed: keep draining
  }
  if (fires_at("worker-throw", index)) {
    throw ChaosError("chaos: injected worker fault at index " +
                     std::to_string(index));
  }
}

}  // namespace rascal::resil::chaos

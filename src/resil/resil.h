// Umbrella header for the resilience layer: cooperative cancellation,
// atomic checkpoints, and the ExecutionControl bundle that threads
// both through the parallel sampling engines.
#pragma once

#include "resil/cancel.h"
#include "resil/checkpoint.h"

namespace rascal::resil {

/// Resilience knobs accepted by the long-running engines
/// (uncertainty_analysis, run_campaign, simulate_jsas).  All members
/// are optional; a default-constructed control reproduces the old
/// all-or-nothing behavior exactly.
struct ExecutionControl {
  /// When set, polled at every index boundary (and inside iterative
  /// solvers / the event loop); the engine drains, flushes the
  /// checkpoint, and returns partial results marked interrupted.
  const CancellationToken* cancel = nullptr;

  /// When set, completed indices are recorded here and previously
  /// restored entries are replayed instead of recomputed, making a
  /// resumed run bit-identical to an uninterrupted one.
  Checkpointer* checkpoint = nullptr;

  /// When true, a sample/trial whose solve fails is recorded as a
  /// structured failure and skipped instead of aborting the run.
  bool skip_failures = false;
};

}  // namespace rascal::resil

#include "resil/retry.h"

#include <limits>

#include "resil/cancel.h"
#include "resil/checkpoint.h"

namespace rascal::resil {

const char* to_string(ErrorClass cls) noexcept {
  switch (cls) {
    case ErrorClass::kParse: return "parse";
    case ErrorClass::kModel: return "model";
    case ErrorClass::kAdmission: return "admission";
    case ErrorClass::kNonConvergence: return "nonconvergence";
    case ErrorClass::kPrecond: return "precond";
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kCancelled: return "cancelled";
    case ErrorClass::kSinkWrite: return "sink-write";
    case ErrorClass::kCheckpointWrite: return "checkpoint-write";
    case ErrorClass::kInternal: return "internal";
  }
  return "internal";
}

bool retryable(ErrorClass cls) noexcept {
  switch (cls) {
    case ErrorClass::kNonConvergence:
    case ErrorClass::kPrecond:
    case ErrorClass::kTransient:
      return true;
    case ErrorClass::kParse:
    case ErrorClass::kModel:
    case ErrorClass::kAdmission:
    case ErrorClass::kCancelled:
    case ErrorClass::kSinkWrite:
    case ErrorClass::kCheckpointWrite:
    case ErrorClass::kInternal:
      return false;
  }
  return false;
}

ErrorClass classify(const std::exception& failure) noexcept {
  if (const auto* tagged = dynamic_cast<const ErrorClassTag*>(&failure)) {
    return tagged->error_class();
  }
  if (dynamic_cast<const CancelledError*>(&failure) != nullptr) {
    return ErrorClass::kCancelled;
  }
  if (dynamic_cast<const CheckpointError*>(&failure) != nullptr) {
    return ErrorClass::kCheckpointWrite;
  }
  // Untagged domain errors come from model binding / validation (lint
  // diagnostics derive from std::domain_error) — structurally
  // permanent.
  if (dynamic_cast<const std::domain_error*>(&failure) != nullptr ||
      dynamic_cast<const std::invalid_argument*>(&failure) != nullptr) {
    return ErrorClass::kModel;
  }
  return ErrorClass::kInternal;
}

std::size_t RetryPolicy::iterations_for_attempt(
    std::size_t attempt) const noexcept {
  if (base_iterations == 0) return 0;
  // base << attempt, saturating: once the shift would overflow the
  // budget is pinned at max, so the schedule stays monotone.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  if (attempt >= 8 * sizeof(std::size_t)) return kMax;
  if (base_iterations > (kMax >> attempt)) return kMax;
  return base_iterations << attempt;
}

}  // namespace rascal::resil

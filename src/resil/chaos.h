// Test-only fault injection for the execution engine itself.
//
// The RASCAL_CHAOS environment variable (or chaos::configure() from
// tests) names deterministic fault sites as a comma-separated list of
// `site@key` tokens:
//
//   worker-throw@7        throw ChaosError when worker index 7 starts
//   sigterm@40            raise(SIGTERM) when worker index 40 starts
//   solver-nonconverge@0  force the 0th iterative solve to not converge
//   solver-fault@0        0th supervised solve attempt throws a
//                         retryable resil::TransientError (serve)
//   sink-write-fail@2     2nd results-sink record write fails
//   checkpoint-write-fail@0  0th checkpoint flush fails as if ENOSPC
//                            hit the tmp+rename write
//   cache-publish-fail@0  0th publish to the shared solve cache is
//                         dropped (results must stay bit-identical)
//   worker-abandon@5      the worker chunk containing index 5 returns
//                         without recording anything (simulated
//                         worker death; the sink must surface gaps)
//
// Index-keyed sites (`worker-throw`, `sigterm`, `worker-abandon`)
// fire when the named sample/trial/replication index is processed;
// occurrence-keyed sites (all others) fire on the K-th call to tick()
// for that site, whichever operation that happens to be.  All sites
// are deterministic so the chaos ctests can assert exact outcomes.
// Site names are free-form: hooks pass whatever string they arm, and
// tools/chaos_matrix.sh sweeps every site against every entry point.
//
// When no spec is configured, enabled() is a single relaxed atomic
// load and every hook is a no-op.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

namespace rascal::resil::chaos {

/// Exception injected at `worker-throw` sites.  Deliberately distinct
/// from domain errors so tests can assert the failure path precisely.
class ChaosError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Replaces the active chaos spec (tests).  An empty spec disables
/// chaos and clears all occurrence counters.
void configure(std::string_view spec);

/// True when any chaos site is armed (fast path: one atomic load).
[[nodiscard]] bool enabled() noexcept;

/// True when `site@index` is armed (index-keyed sites).
[[nodiscard]] bool fires_at(std::string_view site, std::uint64_t index);

/// Occurrence-keyed sites: increments the site's call counter and
/// returns true when `site@K` names this occurrence (0-based).
[[nodiscard]] bool tick(std::string_view site);

/// Standard hook for parallel worker loops: raises SIGTERM at a
/// `sigterm@index` site, throws ChaosError at a `worker-throw@index`
/// site, otherwise does nothing.
void worker_hook(std::uint64_t index);

}  // namespace rascal::resil::chaos

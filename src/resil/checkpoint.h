// Atomic, checksummed JSON checkpoints for long sampling campaigns.
//
// A checkpoint records which sample/trial/replication indices have
// finished and the exact bits they produced, so a run that is killed
// (SIGINT/SIGTERM, OOM, deadline) can resume and still emit output
// byte-identical to an uninterrupted run at any RASCAL_THREADS: the
// deterministic engine re-derives every pending index's substream
// from the root seed, and completed indices are replayed from disk.
//
// File format (single line of JSON; doubles stored as IEEE-754 bit
// patterns so replay is exact):
//
//   {"format":"rascal-checkpoint-v1","kind":"campaign",
//    "digest":"<16 hex>","total":64,
//    "entries":[{"i":0,"s":1,"w":[123,...]},
//               {"i":3,"s":2,"w":[],"note":"solver diverged"}],
//    "checksum":"<16 hex>"}
//
// `digest` fingerprints the run configuration (seed, counts, ranges,
// substream derivation) — resuming under a different configuration is
// rejected.  `checksum` is FNV-1a over every byte before it, so a
// truncated or garbled file is detected and reported, never
// half-loaded.  Writes go to `<path>.tmp` and are renamed into place,
// so the file on disk is always a complete, verified checkpoint.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rascal::resil {

class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Completion status of one checkpointed index.
enum class EntryStatus : std::uint32_t {
  kOk = 1,      // words hold the result bits
  kFailed = 2,  // structurally recorded failure; note holds the error
};

struct CheckpointEntry {
  std::uint64_t index = 0;
  EntryStatus status = EntryStatus::kOk;
  std::vector<std::uint64_t> words;  // domain-encoded result payload
  std::string note;                  // failure message (kFailed only)
};

/// Exact double <-> u64 round-tripping for checkpoint words.
[[nodiscard]] inline std::uint64_t f64_bits(double value) noexcept {
  return std::bit_cast<std::uint64_t>(value);
}
[[nodiscard]] inline double bits_f64(std::uint64_t word) noexcept {
  return std::bit_cast<double>(word);
}

/// Incremental FNV-1a fingerprint used both for the file checksum and
/// for run-configuration digests.
class DigestBuilder {
 public:
  DigestBuilder& add_u64(std::uint64_t value);
  DigestBuilder& add_f64(double value);  // exact bit pattern
  DigestBuilder& add_str(std::string_view text);
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// Thread-safe checkpoint sink.  Workers `record()` each finished
/// index; every `flush_every` new entries (RASCAL_CHECKPOINT_EVERY
/// env, default 32) — and on the final explicit `flush()` — the full
/// entry set is atomically rewritten to `path`.
class Checkpointer {
 public:
  /// What a failed flush (ENOSPC, unwritable tmp, failed rename) does
  /// to the run.  kAbort preserves the historic contract: the flush
  /// throws CheckpointError and the run dies.  kTolerate makes the
  /// checkpoint best-effort: the failure is counted (write_failures(),
  /// `resil.checkpoint.write_failures`), the entries stay in memory,
  /// and the next flush retries the full set — batch/serve runs keep
  /// streaming results even when the checkpoint volume is full.
  /// Either way the on-disk file is never left half-written: the tmp
  /// file is discarded and the previous checkpoint stays intact.
  enum class WriteFailurePolicy { kAbort, kTolerate };

  /// Does not touch the filesystem; call resume_from_disk() to load.
  Checkpointer(std::string path, std::string kind, std::uint64_t digest,
               std::uint64_t total);

  /// Loads `path` if it exists and merges its entries.  Returns the
  /// number of entries restored (0 when the file does not exist).
  /// Throws CheckpointError when the file is corrupt (bad checksum,
  /// truncation, malformed JSON) or belongs to a different run
  /// (kind/digest/total mismatch).
  std::size_t resume_from_disk();

  /// Records a finished index and flushes when the cadence is due.
  void record(CheckpointEntry entry);

  /// Unconditionally writes the current entry set (atomic rename).
  void flush();

  [[nodiscard]] std::vector<CheckpointEntry> entries() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Test hook: overrides the flush cadence.
  void set_flush_every(std::size_t every) noexcept;

  void set_write_failure_policy(WriteFailurePolicy policy) noexcept;

  /// Flush attempts that failed and were tolerated (kTolerate only;
  /// under kAbort the first failure throws instead).
  [[nodiscard]] std::uint64_t write_failures() const;

 private:
  void flush_locked();
  [[nodiscard]] std::string serialize_locked() const;

  std::string path_;
  std::string kind_;
  std::uint64_t digest_ = 0;
  std::uint64_t total_ = 0;
  std::size_t flush_every_ = 32;
  WriteFailurePolicy write_failure_policy_ = WriteFailurePolicy::kAbort;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, CheckpointEntry> entries_;
  std::size_t unflushed_ = 0;
  std::uint64_t write_failures_ = 0;
};

/// Parses and verifies a checkpoint file into its raw parts.  Used by
/// Checkpointer::resume_from_disk and directly by tests.
struct CheckpointFile {
  std::string kind;
  std::uint64_t digest = 0;
  std::uint64_t total = 0;
  std::vector<CheckpointEntry> entries;
};

[[nodiscard]] CheckpointFile load_checkpoint_file(const std::string& path);

/// True when a regular file exists at `path`.
[[nodiscard]] bool checkpoint_file_exists(const std::string& path);

}  // namespace rascal::resil

// Deterministic retry policy and structured error taxonomy for the
// fault-tolerant request supervision layer.
//
// Every failure a solve/parse/sink path can raise is classified into
// an ErrorClass that is either *retryable* (a bigger budget, a
// different rung of the fallback ladder, or simply trying again can
// succeed) or *permanent* (no amount of retrying changes the
// outcome: malformed input, missing model, shed by admission
// control).  Supervisors branch on the class, never on message text.
//
// RetryPolicy is deliberately wall-clock-free: there is no backoff
// delay and no jitter, because rascal retries are about *recovering a
// deterministic computation*, not about spacing out traffic to a
// remote service.  Budgets escalate by attempt index (base << k,
// saturating), so a resumed or re-threaded run walks the exact same
// attempt sequence — bit-identical results at any RASCAL_THREADS.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace rascal::resil {

/// Structured failure classes.  Keep to_string() and retryable() in
/// sync when extending.
enum class ErrorClass {
  kParse,            // malformed request line — permanent
  kModel,            // model load / bind / validation failure — permanent
  kAdmission,        // shed by admission control — permanent, distinct record
  kNonConvergence,   // iterative solve exhausted its budget — retryable
  kPrecond,          // preconditioner rejected the pattern — retryable
  kTransient,        // injected or environmental transient fault — retryable
  kCancelled,        // cooperative cancel — never retried, never recorded
  kSinkWrite,        // results sink could not write a record
  kCheckpointWrite,  // checkpoint flush failed (ENOSPC, rename) — tolerable
  kInternal,         // anything unclassified — permanent, fail loudly
};

[[nodiscard]] const char* to_string(ErrorClass cls) noexcept;

/// True when a retry (same work, possibly a bigger budget or a lower
/// ladder rung) can change the outcome.
[[nodiscard]] bool retryable(ErrorClass cls) noexcept;

/// Mix-in interface for exception types that know their own class.
/// Domain libraries (ctmc, linalg, serve) tag their exceptions so
/// classify() never has to name downstream types — resil stays at the
/// bottom of the dependency graph.
class ErrorClassTag {
 public:
  [[nodiscard]] virtual ErrorClass error_class() const noexcept = 0;

 protected:
  ~ErrorClassTag() = default;
};

/// A retryable fault injected by chaos testing or detected in the
/// environment (as opposed to computed by the solver).  Retrying the
/// identical attempt is expected to succeed bit-identically.
class TransientError : public std::runtime_error, public ErrorClassTag {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] ErrorClass error_class() const noexcept override {
    return ErrorClass::kTransient;
  }
};

/// Raised when a request is refused by admission control (state-count
/// or nnz cap, or the bounded in-flight queue).  Permanent by
/// definition: re-submitting the same request to the same limits
/// sheds it again.
class AdmissionError : public std::runtime_error, public ErrorClassTag {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] ErrorClass error_class() const noexcept override {
    return ErrorClass::kAdmission;
  }
};

/// Classifies an exception.  Types carrying an ErrorClassTag report
/// themselves; resil's own CancelledError/CheckpointError map to
/// their classes; everything else is kInternal (permanent).
[[nodiscard]] ErrorClass classify(const std::exception& failure) noexcept;

/// Bounded, deterministic retry schedule.  No wall clock, no RNG:
/// the k-th attempt of a given request is the same in every run.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  std::size_t max_attempts = 1;

  /// Iteration budget of the first attempt (0 = library default, in
  /// which case escalation re-runs with the same default budget).
  std::size_t base_iterations = 0;

  /// Attempt-indexed budget escalation: attempt k runs with
  /// base_iterations << k, saturating instead of overflowing.  With
  /// base_iterations == 0 every attempt keeps the library default.
  [[nodiscard]] std::size_t iterations_for_attempt(
      std::size_t attempt) const noexcept;

  /// True when attempt `attempt` (0-based) may be followed by another.
  [[nodiscard]] bool allows_another(std::size_t attempt) const noexcept {
    return attempt + 1 < max_attempts;
  }
};

}  // namespace rascal::resil

// Cooperative cancellation for long-running work.
//
// A CancellationToken carries a latched cancel flag plus an optional
// wall-clock deadline.  Producers (signal handlers, --deadline, the
// embedding application) request cancellation; consumers (parallel
// sampling loops, iterative solvers, the event-driven simulator) poll
// `cancelled()` at safe points, drain, flush their checkpoint, and
// return partial results clearly marked as such.
//
// The token is designed so `request_cancel_signal()` is safe to call
// from a signal handler: it touches nothing but lock-free atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace rascal::resil {

enum class CancelReason {
  kNone,       // not cancelled
  kRequested,  // programmatic request_cancel()
  kDeadline,   // wall-clock deadline expired
  kSignal,     // SIGINT / SIGTERM (see signal_number())
};

[[nodiscard]] std::string to_string(CancelReason reason);

/// Thrown by solvers and simulators to abandon in-flight work when
/// their token fires mid-computation.  Drained workers catch it and
/// leave the interrupted index unrecorded, so a resumed run recomputes
/// exactly the indices an uninterrupted run would have produced.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Latches the cancel flag.  Not async-signal-safe (it records a
  /// telemetry counter); use request_cancel_signal() from handlers.
  void request_cancel(CancelReason reason = CancelReason::kRequested) noexcept;

  /// Async-signal-safe variant: lock-free atomic stores only.
  void request_cancel_signal(int signal_number) noexcept;

  /// Arms a deadline `seconds` from now (steady clock).  Passing a
  /// non-positive value makes the very next cancelled() check fire.
  void set_deadline_after(double seconds) noexcept;

  /// True once cancellation was requested or the deadline has passed.
  /// The reason is latched on first observation and never changes.
  [[nodiscard]] bool cancelled() const noexcept;

  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Signal that triggered cancellation (0 unless reason == kSignal).
  [[nodiscard]] int signal_number() const noexcept {
    return signal_.load(std::memory_order_relaxed);
  }

  /// Human-readable cause: "signal SIGTERM", "deadline exceeded", ...
  [[nodiscard]] std::string describe() const;

 private:
  // reason_ doubles as the cancel flag (kNone = not cancelled); it is
  // mutable so the const cancelled() poll can latch a deadline expiry.
  mutable std::atomic<int> reason_{0};
  std::atomic<int> signal_{0};
  std::atomic<std::uint64_t> deadline_ns_{0};  // steady clock; 0 = none
};

/// Routes SIGINT and SIGTERM to `token`.  The first signal latches the
/// token (cooperative drain); the handler then restores the default
/// disposition so a second signal terminates immediately.  The token
/// must outlive the handlers (pass a static or main()-scoped token).
void install_signal_handlers(CancellationToken& token);

/// Monotonic steady-clock nanoseconds (deadline arithmetic, tests).
[[nodiscard]] std::uint64_t steady_now_ns() noexcept;

}  // namespace rascal::resil

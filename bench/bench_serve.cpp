// Batch/serve-layer microbenchmarks (docs/serving.md): strict JSONL
// request parsing, record rendering, shared-solve-cache lookup, and
// end-to-end batch throughput cold vs warm.  The warm/cold pair is
// the headline number — a repeated-parameter request stream should be
// bounded by cache lookups, not re-solves.  google-benchmark binary.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ctmc/solve_cache.h"
#include "serve/batch.h"
#include "serve/request.h"
#include "serve/sink.h"

namespace {

using namespace rascal;

// run_batch loads models from disk, so the bench materialises one
// small repairable pair next to the temp dir.  Written once, reused
// by every benchmark in the process.
const std::string& model_path() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "bench_serve_model.rasc")
            .string();
    std::ofstream model(p);
    model << "model bench pair\n"
             "param La 0.002\n"
             "param Mu 0.5\n"
             "state Up reward 1\n"
             "state Down reward 0\n"
             "rate Up Down La\n"
             "rate Down Up Mu\n";
    return p;
  }();
  return path;
}

// A request stream of `n` lines cycling through `distinct` parameter
// points: hit rate under a working cache approaches 1 - distinct/n.
std::vector<std::string> request_stream(std::size_t n, std::size_t distinct) {
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::ostringstream line;
    line << "{\"model\": \"" << model_path() << "\", \"set\": {\"La\": 0.00"
         << (i % distinct + 1) << "}, \"id\": \"r" << i << "\"}";
    lines.push_back(line.str());
  }
  return lines;
}

void BM_ParseRequest(benchmark::State& state) {
  const std::string line =
      "{\"model\": \"m.rasc\", \"id\": \"r1\", \"set\": {\"FIR\": 0.001, "
      "\"La\": 2e-4}, \"method\": \"gmres\", \"precond\": \"jacobi\", "
      "\"max_iterations\": 200, \"outputs\": [\"availability\", \"mtbf\"]}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::parse_request(line));
  }
}
BENCHMARK(BM_ParseRequest);

void BM_RenderResultLine(benchmark::State& state) {
  serve::Request request;
  request.id = "sweep-17";
  request.outputs = {serve::OutputKind::kAvailability,
                     serve::OutputKind::kDowntime,
                     serve::OutputKind::kMtbf};
  const std::vector<double> values = {0.9999, 52.56, 123456.7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::render_result_line(17, request, values));
  }
}
BENCHMARK(BM_RenderResultLine);

// Ordered-sink throughput: in-order pushes drain through the writer
// thread; close() joins it so each iteration measures a full flush.
void BM_SinkOrderedPush(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::string record(120, 'x');
  for (auto _ : state) {
    std::ostringstream out;
    serve::ResultsSink sink(out);
    for (std::size_t i = 0; i < n; ++i) sink.push(i, record);
    benchmark::DoNotOptimize(sink.close());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SinkOrderedPush)->Arg(256)->Arg(4096);

void BM_SharedCacheHit(benchmark::State& state) {
  ctmc::SharedSolveCache cache;
  ctmc::SteadyState value;
  value.probabilities = {0.25, 0.75};
  cache.insert(0x5EEDULL, value);
  ctmc::SteadyState out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(0x5EEDULL, out));
  }
}
BENCHMARK(BM_SharedCacheHit);

void BM_SharedCacheMiss(benchmark::State& state) {
  ctmc::SharedSolveCache cache;
  ctmc::SteadyState out;
  std::uint64_t key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key++, out));
  }
}
BENCHMARK(BM_SharedCacheMiss);

// End-to-end: 64-request stream over 8 distinct parameter points.
// Cold disables the shared tier (every distinct point re-solves per
// worker chunk); warm shares solutions across the whole stream.
void run_batch_bench(benchmark::State& state, std::size_t cache_capacity) {
  const std::vector<std::string> lines = request_stream(64, 8);
  double hit_rate = 0.0;
  for (auto _ : state) {
    std::ostringstream out;
    serve::BatchOptions options;
    options.threads = 1;  // single worker: measures the cache, not the pool
    options.cache_capacity = cache_capacity;
    const serve::BatchResult result = serve::run_batch(lines, out, options);
    hit_rate = result.hit_rate();
    benchmark::DoNotOptimize(result.succeeded);
  }
  state.counters["hit_rate"] = hit_rate;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}

void BM_BatchColdCache(benchmark::State& state) { run_batch_bench(state, 0); }
BENCHMARK(BM_BatchColdCache);

void BM_BatchWarmCache(benchmark::State& state) {
  run_batch_bench(state, 1024);
}
BENCHMARK(BM_BatchWarmCache);

}  // namespace

BENCHMARK_MAIN();

// Extension ablation: exponential vs phase-type (Erlang-k) vs
// deterministic recovery times.
//
// The real system's restarts are deterministic; the paper models them
// exponentially.  Replacing each restart completion with an Erlang-k
// stage chain interpolates between the two.  This bench re-solves
// Config 1 analytically for growing k and compares against the
// discrete-event simulator running true deterministic recoveries.
#include <cstdio>
#include <iostream>

#include "core/metrics.h"
#include "ctmc/erlang.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "sim/jsas_simulator.h"

namespace {

using namespace rascal;

// Config-1 downtime with every restart completion Erlang-k.
double downtime_with_stages(const expr::ParameterSet& params,
                            std::size_t k) {
  ctmc::Ctmc as = models::app_server_two_instance_model().bind(params);
  as = ctmc::erlangize_all(
      as,
      {{as.state("1DownShort"), as.state("All_Work")},
       {as.state("1DownLong"), as.state("All_Work")},
       {as.state("2_Down"), as.state("All_Work")}},
      k);
  ctmc::Ctmc pair = models::hadb_pair_model().bind(params);
  pair = ctmc::erlangize_all(
      pair,
      {{pair.state("RestartShort"), pair.state("Ok")},
       {pair.state("RestartLong"), pair.state("Ok")},
       {pair.state("Repair"), pair.state("Ok")},
       {pair.state("Maintenance"), pair.state("Ok")},
       {pair.state("2_Down"), pair.state("Ok")}},
      k);

  const auto as_eq =
      core::two_state_equivalent(as, ctmc::solve_steady_state(as));
  const auto pair_eq =
      core::two_state_equivalent(pair, ctmc::solve_steady_state(pair));

  ctmc::CtmcBuilder root;
  const auto ok = root.state("Ok", 1.0);
  const auto as_fail = root.state("AS_Fail", 0.0);
  const auto hadb_fail = root.state("HADB_Fail", 0.0);
  root.rate(ok, as_fail, as_eq.lambda_eq);
  root.rate(as_fail, ok, as_eq.mu_eq);
  root.rate(ok, hadb_fail, 2.0 * pair_eq.lambda_eq);
  root.rate(hadb_fail, ok, pair_eq.mu_eq);
  return core::solve_availability(root.build())
      .downtime_minutes_per_year;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: recovery-time distribution shape (Config 1) "
               "===\n\n";
  const auto params = models::default_parameters();

  std::printf("  %-22s %s\n", "recovery model", "yearly downtime (min)");
  for (std::size_t k : {1, 2, 4, 8, 16}) {
    std::printf("  Erlang-%-15zu %.4f%s\n", k,
                downtime_with_stages(params, k),
                k == 1 ? "   (= the paper's exponential model)" : "");
  }

  sim::JsasSimOptions options;
  options.duration = 300.0 * 8760.0;
  options.replications = 8;
  options.seed = 77;
  options.exponential_recoveries = false;
  const auto des =
      sim::simulate_jsas(models::JsasConfig::config1(), params, options);
  std::printf("  %-22s %.4f   (2,400 simulated years, 95%% CI +/- %.2f)\n",
              "deterministic (DES)", des.downtime_minutes_per_year,
              (des.availability_ci95.upper - des.availability_ci95.lower) *
                  0.5 * 8760.0 * 60.0);

  std::cout
      << "\nReading: sharpening the recovery-time distribution (larger k)\n"
         "moves the analytic downtime by under 0.3%, well inside the\n"
         "deterministic-DES confidence interval.  The paper's exponential\n"
         "assumption is immaterial because downtime is dominated by the\n"
         "*rate* of second faults inside the recovery window, which\n"
         "depends on the window's expected length, not its shape.\n";
  return 0;
}

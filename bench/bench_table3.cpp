// Reproduces Table 3: comparison of configurations with 1-10 AS
// instances (and as many HADB pairs), including the two headline
// observations: two 9s gained from 1 -> 2 instances, and the 4x4
// optimum.
#include <iostream>

#include "models/jsas_system.h"
#include "models/params.h"
#include "report/table.h"

int main() {
  using namespace rascal;

  std::cout << "=== Table 3: Comparison of Configurations ===\n"
            << "(paper values in parentheses)\n\n";

  struct PaperRow {
    std::size_t instances;
    double availability;
    double downtime;
    double mtbf;
  };
  const PaperRow paper[] = {
      {1, 0.999629, 195.0, 168.0},      {2, 0.9999933, 3.49, 89980.0},
      {4, 0.9999956, 2.29, 229326.0},   {6, 0.9999934, 3.44, 152889.0},
      {8, 0.9999912, 4.58, 114669.0},   {10, 0.9999891, 5.73, 91736.0},
  };

  report::TextTable table({"# Instances", "# HADB Pairs", "Availability",
                           "Yearly Downtime", "MTBF (hr)"});
  const auto params = models::default_parameters();
  for (const PaperRow& row : paper) {
    const auto r =
        models::solve_jsas(models::JsasConfig::symmetric(row.instances),
                           params);
    table.add_row(
        {std::to_string(row.instances),
         row.instances == 1 ? "N/A" : std::to_string(row.instances),
         report::format_percent(r.availability, row.instances == 1 ? 4 : 5) +
             "  (" + report::format_percent(row.availability,
                                            row.instances == 1 ? 4 : 5) +
             ")",
         report::format_fixed(r.downtime_minutes_per_year, 2) + " min  (" +
             report::format_fixed(row.downtime, 2) + " min)",
         report::format_fixed(r.mtbf_hours, 0) + "  (" +
             report::format_fixed(row.mtbf, 0) + ")"});
  }
  std::cout << table.to_string() << "\n";

  // The paper's observations, checked numerically.
  const double u1 =
      1.0 - models::solve_jsas(models::JsasConfig::symmetric(1), params)
                .availability;
  const double u2 =
      1.0 - models::solve_jsas(models::JsasConfig::symmetric(2), params)
                .availability;
  std::cout << "Observation 1: 1 -> 2 instances improves unavailability by "
            << report::format_fixed(u1 / u2, 0)
            << "x (paper: 'two 9's')\n";

  std::size_t best_n = 0;
  double best_a = 0.0;
  for (std::size_t n : {1, 2, 4, 6, 8, 10}) {
    const double a =
        models::solve_jsas(models::JsasConfig::symmetric(n), params)
            .availability;
    if (a > best_a) {
      best_a = a;
      best_n = n;
    }
  }
  std::cout << "Observation 2: optimal configuration is " << best_n
            << " AS instances / " << best_n
            << " HADB pairs (paper: 4 / 4)\n";
  const double a10 =
      models::solve_jsas(models::JsasConfig::symmetric(10), params)
          .availability;
  std::cout << "Observation 3: at 10 pairs availability = "
            << report::format_percent(a10, 5)
            << " -- five 9s no longer hold (paper agrees)\n";
  return 0;
}

// Cross-validation: analytic hierarchical Markov model vs the
// discrete-event simulator of the actual cluster, for Config 1 and
// Config 2, under (a) the model's exponential-recovery assumption and
// (b) deterministic recovery times as the real system behaves.
#include <cstdio>
#include <iostream>

#include "models/jsas_system.h"
#include "models/params.h"
#include "report/table.h"
#include "sim/jsas_simulator.h"

int main() {
  using namespace rascal;

  std::cout << "=== Analytic model vs discrete-event simulation ===\n"
            << "(2,000 simulated system-years per configuration)\n\n";

  const auto params = models::default_parameters();
  report::TextTable table({"Configuration", "Recovery times", "Downtime",
                           "95% CI", "MTBF (hr)", "Analytic downtime",
                           "Analytic MTBF"});

  for (const auto& config :
       {models::JsasConfig::config1(), models::JsasConfig::config2()}) {
    const auto analytic = models::solve_jsas(config, params);
    for (bool exponential : {true, false}) {
      sim::JsasSimOptions options;
      options.duration = 250.0 * 8760.0;
      options.replications = 8;
      options.seed = 2004;
      options.exponential_recoveries = exponential;
      const auto sim_result = sim::simulate_jsas(config, params, options);

      const double ci_lo =
          (1.0 - sim_result.availability_ci95.upper) * 8760.0 * 60.0;
      const double ci_hi =
          (1.0 - sim_result.availability_ci95.lower) * 8760.0 * 60.0;
      table.add_row(
          {config.name(), exponential ? "exponential" : "deterministic",
           report::format_fixed(sim_result.downtime_minutes_per_year, 2) +
               " min/yr",
           "(" + report::format_fixed(ci_lo, 2) + ", " +
               report::format_fixed(ci_hi, 2) + ")",
           report::format_fixed(sim_result.mtbf_hours, 0),
           report::format_fixed(analytic.downtime_minutes_per_year, 2) +
               " min/yr",
           report::format_fixed(analytic.mtbf_hours, 0)});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout
      << "Reading: with exponential recoveries the DES follows the same\n"
         "stochastic model as the CTMC, so downtime should agree within the\n"
         "CI.  With deterministic recoveries (the real system's behaviour)\n"
         "the second-failure window changes shape but stays the same order\n"
         "of magnitude -- the exponential assumption in the paper's model\n"
         "is not what drives its conclusions.\n";
  return 0;
}

// Reproduces the reasoning behind the paper's AS short-restart
// parameter (Section 5, "AS Restart Time"): measured process restart
// is under 25 s, but the load balancer only notices the recovered
// instance at its next health check (60 s interval), so the model
// uses 90 s.  We simulate the failure/restart/health-check timeline
// with the event scheduler and report the distribution of the
// effective outage seen by the load balancer.
#include <cstdio>
#include <iostream>

#include "sim/scheduler.h"
#include "stats/rng.h"
#include "stats/summary.h"

int main() {
  using namespace rascal;

  std::cout << "=== Section 5: effective AS restart time seen by the LBP "
               "===\n\n";

  constexpr double kHealthCheckInterval = 60.0;  // seconds
  constexpr std::size_t kTrials = 20000;

  stats::RandomEngine rng(8);
  stats::Summary effective_outage;
  std::size_t covered_by_90s = 0;

  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    // The fixed health-check grid is the calendar queue's best case;
    // both backends yield identical event order, so the choice only
    // affects wall time.
    sim::Scheduler scheduler(sim::QueueKind::kCalendar);
    // Health checks tick on a fixed grid; the failure lands at a
    // uniformly random phase within the check interval.
    const double failure_time = rng.uniform(0.0, kHealthCheckInterval);
    // Measured restart time: ~25 s with some spread (lognormal, as in
    // the fault-injection campaign).
    const double restart_duration =
        25.0 * std::exp(0.2 * rng.normal01() - 0.5 * 0.2 * 0.2);
    const double restart_done = failure_time + restart_duration;

    double detected_at = -1.0;
    // Schedule enough health checks to cover the restart.
    for (double t = 0.0; t < restart_done + 2.0 * kHealthCheckInterval;
         t += kHealthCheckInterval) {
      scheduler.schedule_at(t, [&, t] {
        if (detected_at < 0.0 && t >= restart_done) detected_at = t;
      });
    }
    scheduler.run_until(restart_done + 2.0 * kHealthCheckInterval);

    const double outage = detected_at - failure_time;
    effective_outage.add(outage);
    if (outage <= 90.0) ++covered_by_90s;
  }

  std::printf("trials                     : %zu\n", kTrials);
  std::printf("process restart (input)    : mean ~25 s\n");
  std::printf("effective outage seen by LB: mean %.1f s, min %.1f s, max "
              "%.1f s\n",
              effective_outage.mean(), effective_outage.min(),
              effective_outage.max());
  std::printf("covered by the 90 s model parameter: %.1f%% of failures\n\n",
              100.0 * static_cast<double>(covered_by_90s) /
                  static_cast<double>(kTrials));
  std::cout
      << "Reading: restart ~25 s plus a uniform 0-60 s wait for the next\n"
         "health check gives a mean effective outage near 55 s; the\n"
         "paper's conservative Tstart_short = 90 s covers the large\n"
         "majority of failures, as intended.\n";
  return 0;
}

// CSR sparse matrix-vector microbenchmarks (ISSUE 6): the iterative
// solvers and uniformization spend their time in left_multiply_into,
// so its inner loop and the CSR construction paths are tracked in the
// BENCH_spmv.json trajectory.  google-benchmark binary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "ctmc/ctmc.h"
#include "linalg/sparse.h"
#include "models/app_server.h"
#include "models/params.h"

namespace {

using namespace rascal;

ctmc::Ctmc as_chain(std::size_t n) {
  return models::app_server_n_instance_model(n).bind(
      models::default_parameters());
}

// Synthetic banded generator-like matrix: n states, bandwidth 5, the
// sparsity regime of lumped availability chains at fleet scale.
linalg::CsrMatrix banded(std::size_t n) {
  std::vector<linalg::Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = i > 2 ? i - 2 : 0; j < std::min(n, i + 3); ++j) {
      if (j == i) continue;
      const double rate =
          1.0 + static_cast<double>((i * 7 + j * 3) % 5);
      triplets.push_back({i, j, rate});
      off_sum += rate;
    }
    triplets.push_back({i, i, -off_sum});
  }
  return {n, n, std::move(triplets)};
}

void BM_CsrLeftMultiply(benchmark::State& state) {
  const auto q = banded(static_cast<std::size_t>(state.range(0)));
  const linalg::Vector x(q.rows(), 1.0 / static_cast<double>(q.rows()));
  linalg::Vector y;
  for (auto _ : state) {
    q.left_multiply_into(x, y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["nnz"] = static_cast<double>(q.non_zeros());
}
BENCHMARK(BM_CsrLeftMultiply)->Arg(64)->Arg(512)->Arg(4096);

void BM_CsrMultiply(benchmark::State& state) {
  const auto q = banded(static_cast<std::size_t>(state.range(0)));
  const linalg::Vector x(q.cols(), 1.0);
  linalg::Vector y;
  for (auto _ : state) {
    q.multiply_into(x, y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["nnz"] = static_cast<double>(q.non_zeros());
}
BENCHMARK(BM_CsrMultiply)->Arg(64)->Arg(512)->Arg(4096);

// The AS chain matvec that power iteration and uniformization run.
void BM_CsrLeftMultiplyAsChain(benchmark::State& state) {
  const auto chain = as_chain(static_cast<std::size_t>(state.range(0)));
  const auto q = chain.sparse_generator();
  const linalg::Vector x(q.rows(), 1.0 / static_cast<double>(q.rows()));
  linalg::Vector y;
  for (auto _ : state) {
    q.left_multiply_into(x, y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["states"] = static_cast<double>(q.rows());
}
BENCHMARK(BM_CsrLeftMultiplyAsChain)->Arg(4)->Arg(8)->Arg(10);

// CSR-native construction from Ctmc transitions (no triplet
// materialization) vs the generic counting-sort triplet path.
void BM_SparseGeneratorBuild(benchmark::State& state) {
  const auto chain = as_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.sparse_generator());
  }
  state.counters["states"] = static_cast<double>(chain.num_states());
}
BENCHMARK(BM_SparseGeneratorBuild)->Arg(4)->Arg(8)->Arg(10);

void BM_CsrFromTriplets(benchmark::State& state) {
  const auto q = banded(static_cast<std::size_t>(state.range(0)));
  std::vector<linalg::Triplet> triplets;
  for (std::size_t r = 0; r < q.rows(); ++r) {
    for (const auto& [col, value] : q.row(r)) {
      triplets.push_back({r, col, value});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linalg::CsrMatrix(q.rows(), q.cols(), triplets));
  }
  state.counters["nnz"] = static_cast<double>(q.non_zeros());
}
BENCHMARK(BM_CsrFromTriplets)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Figure 6: the same Tstart_long sweep for Config 2, where
// the 4-instance AS tier makes the system availability essentially
// insensitive (variation in the 9th decimal).
#include <cstdio>
#include <iostream>

#include "analysis/parametric.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "report/ascii_plot.h"

int main() {
  using namespace rascal;

  std::cout << "=== Figure 6: Availability vs AS HW/OS recovery time, "
               "Config 2 ===\n\n";

  const analysis::ContextModelFunction availability =
      [](const expr::ParameterSet& params, ctmc::SolveCache& cache) {
        return models::solve_jsas(models::JsasConfig::config2(), params,
                                  cache)
            .availability;
      };
  const auto xs = analysis::linspace(0.5, 3.0, 11);
  const auto sweep = analysis::parametric_sweep(
      availability, models::default_parameters(), "as_Tstart_long", xs);

  std::vector<double> ys;
  std::printf("  %-18s %s\n", "Tstart_long (h)", "Availability");
  for (const auto& point : sweep) {
    ys.push_back(point.metric);
    std::printf("  %-18.2f %.10f\n", point.parameter_value, point.metric);
  }

  report::PlotOptions options;
  options.title = "\nParametric Analysis of Availability for Config 2";
  options.x_label = "Tstart_long (hours)";
  std::cout << report::line_plot(xs, ys, options);

  const double swing = ys.front() - ys.back();
  std::printf(
      "\nTotal availability swing over [0.5 h, 3 h]: %.2e\n"
      "Paper: availability stays above 99.9995%% even at 3 hours "
      "(here: %.7f).\n",
      swing, ys.back());
  return 0;
}

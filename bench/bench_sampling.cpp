// Ablation (DESIGN.md #3): plain Monte Carlo vs Latin hypercube
// sampling for the Figure 7 uncertainty analysis — how fast does the
// estimated mean yearly downtime stabilize with sample count?
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/uncertainty.h"
#include "core/units.h"
#include "models/jsas_system.h"
#include "models/params.h"

int main() {
  using namespace rascal;
  using core::per_year;

  std::cout << "=== Ablation: Monte Carlo vs Latin hypercube sampling ===\n"
            << "(Config 1 uncertainty analysis; spread of the mean over 10 "
               "independent runs)\n\n";

  const std::vector<stats::ParameterRange> ranges = {
      {"as_La_as", per_year(10.0), per_year(50.0)},
      {"hadb_La_hadb", per_year(1.0), per_year(4.0)},
      {"as_La_os", per_year(0.5), per_year(2.0)},
      {"as_La_hw", per_year(0.5), per_year(2.0)},
      {"hadb_La_os", per_year(0.5), per_year(2.0)},
      {"hadb_La_hw", per_year(0.5), per_year(2.0)},
      {"as_Tstart_long", 0.5, 3.0},
      {"hadb_FIR", 0.0, 0.002}};

  const analysis::ModelFunction downtime =
      [](const expr::ParameterSet& params) {
        return models::solve_jsas(models::JsasConfig::config1(), params)
            .downtime_minutes_per_year;
      };
  const auto base = models::default_parameters();

  std::printf("  %-8s %-28s %-28s\n", "samples", "MC mean (stddev over runs)",
              "LHS mean (stddev over runs)");
  for (std::size_t samples : {25, 50, 100, 200, 400}) {
    stats::Summary mc_means;
    stats::Summary lhs_means;
    for (std::uint64_t run = 0; run < 10; ++run) {
      analysis::UncertaintyOptions options;
      options.samples = samples;
      options.seed = 1000 + run;
      options.latin_hypercube = false;
      mc_means.add(
          analysis::uncertainty_analysis(downtime, base, ranges, options)
              .mean);
      options.latin_hypercube = true;
      lhs_means.add(
          analysis::uncertainty_analysis(downtime, base, ranges, options)
              .mean);
    }
    std::printf("  %-8zu %.3f (%.3f)%15s %.3f (%.3f)\n", samples,
                mc_means.mean(), mc_means.stddev(), "", lhs_means.mean(),
                lhs_means.stddev());
  }
  std::cout << "\nReading: LHS cuts the run-to-run spread of the estimated\n"
               "mean downtime vs plain MC at equal cost; both converge to\n"
               "the paper's 3.78 min.\n";
  return 0;
}

// Ablation (DESIGN.md #1): steady-state solver microbenchmarks on the
// N-instance Application Server chains (5 to 221 states) and accuracy
// on the stiff JSAS models.  google-benchmark binary.
#include <benchmark/benchmark.h>

#include "ctmc/solve_cache.h"
#include "ctmc/steady_state.h"
#include "expr/parameter_set.h"
#include "linalg/gth.h"
#include "linalg/iterative.h"
#include "linalg/workspace.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "models/jsas_system.h"
#include "models/params.h"

namespace {

using namespace rascal;

ctmc::Ctmc as_chain(std::size_t n) {
  return models::app_server_n_instance_model(n).bind(
      models::default_parameters());
}

void BM_GthSteadyState(benchmark::State& state) {
  const auto chain = as_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gth_stationary(chain.generator()));
  }
  state.counters["states"] = static_cast<double>(chain.num_states());
}
BENCHMARK(BM_GthSteadyState)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_LuSteadyState(benchmark::State& state) {
  const auto chain = as_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kLu));
  }
  state.counters["states"] = static_cast<double>(chain.num_states());
}
BENCHMARK(BM_LuSteadyState)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

// Workspace-reusing variants (ISSUE 6 tentpole): same solves through
// a per-caller SolveWorkspace, so the factor/pivot/scratch storage is
// allocated once instead of per solve.  Results are bit-identical to
// the fresh path (gated by check_workspace_consensus).
void BM_GthSteadyStateWorkspace(benchmark::State& state) {
  const auto chain = as_chain(static_cast<std::size_t>(state.range(0)));
  linalg::SolveWorkspace workspace;
  ctmc::SolveControl control;
  control.workspace = &workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctmc::solve_steady_state(
        chain, ctmc::SteadyStateMethod::kGth, ctmc::Validation::kOn,
        control));
  }
  state.counters["states"] = static_cast<double>(chain.num_states());
}
BENCHMARK(BM_GthSteadyStateWorkspace)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_LuSteadyStateWorkspace(benchmark::State& state) {
  const auto chain = as_chain(static_cast<std::size_t>(state.range(0)));
  linalg::SolveWorkspace workspace;
  ctmc::SolveControl control;
  control.workspace = &workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctmc::solve_steady_state(
        chain, ctmc::SteadyStateMethod::kLu, ctmc::Validation::kOn,
        control));
  }
  state.counters["states"] = static_cast<double>(chain.num_states());
}
BENCHMARK(BM_LuSteadyStateWorkspace)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

// The fig7 per-sample path: one full JSAS solve per parameter draw
// through a SolveCache.  The miss variant perturbs a parameter every
// iteration (every draw re-solves, as uncertainty analysis does); the
// hit variant repeats identical parameters (the generator digest
// short-circuits the solve).
void BM_JsasSolveCacheMiss(benchmark::State& state) {
  const auto config = models::JsasConfig::config1();
  ctmc::SolveCache cache;
  expr::ParameterSet params = models::default_parameters();
  double bump = 0.0;
  for (auto _ : state) {
    params.set("as_Tstart_long", 1.0 + bump);
    bump += 1e-9;
    benchmark::DoNotOptimize(models::solve_jsas(config, params, cache));
  }
}
BENCHMARK(BM_JsasSolveCacheMiss);

void BM_JsasSolveCacheHit(benchmark::State& state) {
  const auto config = models::JsasConfig::config1();
  ctmc::SolveCache cache;
  const expr::ParameterSet params = models::default_parameters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::solve_jsas(config, params, cache));
  }
}
BENCHMARK(BM_JsasSolveCacheHit);

// Iterative solvers on a *mild* chain (they do not converge in
// reasonable time on the stiff AS chain — that observation is the
// ablation result; see the accuracy benchmark below).
ctmc::Ctmc mild_chain(std::size_t n) {
  ctmc::CtmcBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.state("s" + std::to_string(i), i == 0 ? 0.0 : 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    b.rate(i, (i + 1) % n, 1.0 + static_cast<double>(i % 3));
    b.rate((i + 1) % n, i, 0.5);
  }
  return b.build();
}

void BM_PowerIterationMild(benchmark::State& state) {
  const auto chain = mild_chain(static_cast<std::size_t>(state.range(0)));
  const auto q = chain.sparse_generator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::power_stationary(q));
  }
}
BENCHMARK(BM_PowerIterationMild)->Arg(8)->Arg(64)->Arg(256);

void BM_GaussSeidelMild(benchmark::State& state) {
  const auto chain = mild_chain(static_cast<std::size_t>(state.range(0)));
  const auto q = chain.sparse_generator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gauss_seidel_stationary(q));
  }
}
BENCHMARK(BM_GaussSeidelMild)->Arg(8)->Arg(64)->Arg(256);

// Stiffness accuracy probe: relative error of LU vs GTH on the HADB
// pair chain, whose rates span 8+ orders of magnitude.
void BM_StiffAccuracy(benchmark::State& state) {
  const auto chain =
      models::hadb_pair_model().bind(models::default_parameters());
  double max_rel_err = 0.0;
  for (auto _ : state) {
    const auto gth = ctmc::solve_steady_state(chain);
    const auto lu =
        ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kLu);
    for (std::size_t i = 0; i < chain.num_states(); ++i) {
      const double p = gth.probability(i);
      if (p > 0.0) {
        max_rel_err = std::max(
            max_rel_err, std::abs(lu.probability(i) - p) / p);
      }
    }
    benchmark::DoNotOptimize(max_rel_err);
  }
  state.counters["max_rel_err_LU_vs_GTH"] = max_rel_err;
}
BENCHMARK(BM_StiffAccuracy);

}  // namespace

BENCHMARK_MAIN();

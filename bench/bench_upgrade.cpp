// Extension: dual-cluster rolling upgrades (the deployment style the
// paper mentions but leaves out of scope).  Quantifies the trade
// between unplanned downtime (which dual clusters nearly eliminate)
// and planned switchover downtime (which upgrades introduce).
#include <cstdio>
#include <iostream>

#include "core/metrics.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "models/upgrade.h"
#include "report/table.h"

int main() {
  using namespace rascal;

  std::cout << "=== Extension: dual-cluster rolling upgrades ===\n\n";

  const auto base = models::default_parameters();
  const auto single =
      models::solve_jsas(models::JsasConfig::config1(), base);
  std::printf(
      "Baseline: one 2x2 cluster (Table 2 Config 1): %.2f min/yr downtime\n\n",
      single.downtime_minutes_per_year);

  report::TextTable table({"Upgrades/yr", "Switchover", "Downtime (min/yr)",
                           "Planned share", "Availability"});
  for (const double upgrades : {4.0, 12.0, 52.0}) {
    for (const double switch_seconds : {5.0, 30.0, 120.0}) {
      const auto params = models::upgrade_parameters_for(
          base, 2, 2, upgrades, /*t_upgrade_hours=*/2.0,
          switch_seconds / 3600.0);
      const auto chain = models::dual_cluster_upgrade_model().bind(params);
      const auto steady = ctmc::solve_steady_state(chain);
      const auto m = core::availability_metrics(chain, steady);
      double planned = 0.0;
      for (const auto& entry : core::downtime_by_state(chain, steady)) {
        if (chain.state_name(entry.state) == "Switchover") {
          planned = entry.minutes_per_year;
        }
      }
      table.add_row(
          {report::format_fixed(upgrades, 0),
           report::format_fixed(switch_seconds, 0) + " s",
           report::format_fixed(m.downtime_minutes_per_year, 3),
           report::format_percent(
               planned / m.downtime_minutes_per_year, 1),
           report::format_percent(m.availability, 5)});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout
      << "Reading: the dual cluster wipes out unplanned outage (double\n"
         "cluster faults are ~1e-4 min/yr) so total downtime is the\n"
         "planned cut-over budget: upgrades_per_year x T_switch.  Weekly\n"
         "upgrades need a sub-10-second switchover to stay under the\n"
         "single cluster's 3.5 min/yr -- session failover via HADB (the\n"
         "paper's mechanism) is exactly what makes that possible.\n";
  return 0;
}

// Shared driver for the Figure 7 / Figure 8 uncertainty benches.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/uncertainty.h"
#include "core/units.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "report/ascii_plot.h"
#include "stats/summary.h"

namespace rascal::benchutil {

/// The six uncertain parameters and ranges of Section 7.
inline std::vector<stats::ParameterRange> paper_ranges() {
  using core::per_year;
  return {{"as_La_as", per_year(10.0), per_year(50.0)},
          {"hadb_La_hadb", per_year(1.0), per_year(4.0)},
          {"as_La_os", per_year(0.5), per_year(2.0)},
          {"as_La_hw", per_year(0.5), per_year(2.0)},
          {"hadb_La_os", per_year(0.5), per_year(2.0)},
          {"hadb_La_hw", per_year(0.5), per_year(2.0)},
          {"as_Tstart_long", 0.5, 3.0},
          {"hadb_FIR", 0.0, 0.002}};
}

struct PaperFigure {
  double mean;
  double ci80_lo, ci80_hi;
  double ci90_lo, ci90_hi;
  double fraction_below_5_25;  // share of systems above five 9s
};

inline void run_uncertainty_figure(const models::JsasConfig& config,
                                   const char* figure_name,
                                   const PaperFigure& paper) {
  std::cout << "=== " << figure_name
            << ": Uncertainty analysis of yearly downtime, " << config.name()
            << " ===\n(1,000 parameter snapshots, as in the paper)\n\n";

  analysis::UncertaintyOptions options;
  options.samples = 1000;
  options.seed = 2004;
  const auto result = analysis::uncertainty_analysis(
      [&config](const expr::ParameterSet& params, ctmc::SolveCache& cache) {
        return models::solve_jsas(config, params, cache)
            .downtime_minutes_per_year;
      },
      models::default_parameters(), paper_ranges(), options);

  std::printf("  Mean yearly downtime : %.2f min     (paper: %.2f)\n",
              result.mean, paper.mean);
  std::printf("  80%% interval         : (%.2f, %.2f)  (paper: (%.2f, %.2f))\n",
              result.interval80.lower, result.interval80.upper, paper.ci80_lo,
              paper.ci80_hi);
  std::printf("  90%% interval         : (%.2f, %.2f)  (paper: (%.2f, %.2f))\n",
              result.interval90.lower, result.interval90.upper, paper.ci90_lo,
              paper.ci90_hi);
  std::printf(
      "  Systems above five 9s: %.1f%% (downtime < 5.25 min; paper: over "
      "%.0f%%)\n\n",
      result.fraction_below(5.25) * 100.0, paper.fraction_below_5_25 * 100.0);

  // Scatter of downtime vs snapshot index, as the paper plots it.
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < result.metrics.size(); ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(result.metrics[i]);
  }
  report::PlotOptions plot;
  plot.title = "Yearly downtime (minutes) per parameter snapshot";
  plot.x_label = "parameter snapshot";
  std::cout << report::scatter_plot(xs, ys, plot) << "\n";

  // Downtime histogram (not in the paper, but makes the spread
  // readable in a terminal).
  stats::Histogram histogram(0.0, 12.0, 12);
  for (double v : result.metrics) histogram.add(v);
  std::cout << "Histogram (minutes/year):\n";
  for (std::size_t bin = 0; bin < histogram.bins(); ++bin) {
    std::printf("  [%5.2f, %5.2f) %4zu ", histogram.bin_lower(bin),
                histogram.bin_upper(bin), histogram.count(bin));
    std::cout << std::string(histogram.count(bin) / 5, '#') << "\n";
  }
  if (histogram.overflow() > 0) {
    std::printf("  [12.00,  inf) %4zu\n", histogram.overflow());
  }
}

}  // namespace rascal::benchutil

// Extension: performability view of the Application Server cluster.
// The paper marks the Recovery state as "a degraded state in
// performability modeling"; here the N-instance chain carries
// capacity rewards (fraction of instances serving) and the workload
// lens of Section 1 ("minimize loss of transactions") is applied.
#include <cstdio>
#include <iostream>

#include "analysis/user_impact.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/params.h"
#include "report/table.h"

int main() {
  using namespace rascal;

  std::cout << "=== Extension: performability of the AS cluster ===\n"
            << "(workload: 100 req/s, 10,000 concurrent sessions — the\n"
            << " paper's stated per-instance session capacity)\n\n";

  const analysis::Workload workload{100.0 * 3600.0, 10000.0};
  const auto params = models::default_parameters();

  report::TextTable table(
      {"Instances", "Strict availability", "Expected capacity",
       "Capacity-min lost/yr", "Lost req/yr", "Degraded req/yr",
       "Sessions aborted/yr"});
  for (std::size_t n : {2, 4, 6, 8}) {
    const auto strict = core::solve_availability(
        models::app_server_n_instance_model(n).bind(params));
    const auto capacity_chain =
        models::app_server_capacity_model(n).bind(params);
    const auto steady = ctmc::solve_steady_state(capacity_chain);
    const auto impact = analysis::user_impact(capacity_chain, steady,
                                              workload, /*up=*/1e-9);
    table.add_row(
        {std::to_string(n),
         report::format_percent(strict.availability, 7),
         report::format_percent(impact.expected_reward_rate, 5),
         report::format_fixed(impact.capacity_minutes_lost_per_year, 1),
         report::format_fixed(impact.lost_requests_per_year, 1),
         report::format_fixed(impact.degraded_requests_per_year, 0),
         report::format_fixed(impact.sessions_lost_per_year, 2)});
  }
  std::cout << table.to_string() << "\n";
  std::cout
      << "Reading: strict availability improves explosively with cluster\n"
         "size, but expected capacity is nearly flat -- each instance\n"
         "still spends the same ~52 failures/yr x ~90 s restarting, so\n"
         "the capacity-minutes lost scale with the restart budget, not\n"
         "with redundancy.  Redundancy buys continuity (no lost\n"
         "requests), not capacity.\n";
  return 0;
}

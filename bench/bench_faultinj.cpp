// Reproduces the Section 3 measurement campaign on the simulated
// testbed: per-fault-class outcomes and recovery-time measurements,
// which justify the conservative Section 5 parameters.
#include <cstdio>
#include <iostream>
#include <map>

#include "faultinj/injector.h"
#include "report/table.h"

int main() {
  using namespace rascal;

  std::cout << "=== Section 3: fault injection campaign (simulated testbed) "
               "===\n\n";

  faultinj::CampaignOptions options;
  options.trials = 3287;
  const auto result = faultinj::run_campaign(options);

  std::map<std::string, std::pair<int, int>> per_class;  // success/total
  for (const auto& record : result.records) {
    auto& [ok, total] = per_class[faultinj::to_string(record.fault)];
    ++total;
    if (record.service_stayed_available && record.target_recovered) ++ok;
  }

  report::TextTable table({"Fault class", "Injections", "Recovered",
                           "Service stayed up"});
  for (const auto& [name, counts] : per_class) {
    table.add_row({name, std::to_string(counts.second),
                   std::to_string(counts.first),
                   counts.first == counts.second ? "yes (all)" : "NO"});
  }
  std::cout << table.to_string() << "\n";
  std::printf("Total: %llu/%llu recoveries successful (paper: all of >3,000"
              ")\n\n",
              static_cast<unsigned long long>(result.successes),
              static_cast<unsigned long long>(result.trials));

  std::cout << "Recovery time by workload level at injection (the paper "
               "fluctuated\nworkloads from idle to fully loaded):\n";
  for (std::size_t level = 0; level < 3; ++level) {
    const auto& summary = result.recovery_by_workload[level];
    std::printf("  %-13s %5zu injections, mean recovery %5.1f s\n",
                faultinj::to_string(
                    static_cast<faultinj::WorkloadLevel>(level))
                    .c_str(),
                summary.count(), summary.mean() * 3600.0);
  }
  std::cout << "\nMeasured recovery times vs Section 5 model parameters:\n";
  std::printf(
      "  HADB restart : mean %4.0f s, max %4.0f s  -> model uses 60 s "
      "(paper measured ~40 s)\n",
      result.hadb_restart_times.mean() * 3600.0,
      result.hadb_restart_times.max() * 3600.0);
  std::printf(
      "  HADB rebuild : mean %4.1f min, max %4.1f min -> model uses 30 min "
      "(paper measured ~12 min/GB)\n",
      result.hadb_rebuild_times.mean() * 60.0,
      result.hadb_rebuild_times.max() * 60.0);
  std::printf(
      "  AS restart   : mean %4.0f s, max %4.0f s  -> model uses 90 s "
      "(paper measured <25 s plus LB health-check latency)\n",
      result.as_restart_times.mean() * 3600.0,
      result.as_restart_times.max() * 3600.0);
  return 0;
}

// Wall-clock scaling of the deterministic parallel sampling engine.
//
// Times the two headline workloads at 1/2/4/8 worker threads and
// checks that every thread count reproduces the single-thread output
// bit for bit:
//   * the Figure 7 uncertainty analysis (1,000 model solves over the
//     Section 7 parameter ranges, Config 1);
//   * the Section 3 fault-injection campaign (3,287 trials).
//
//   bench_parallel_scaling [--samples N] [--trials N] [--json FILE]
//
// --json writes a machine-readable record (committed as
// BENCH_parallel.json at the repo root) so later PRs can track the
// perf trajectory.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/uncertainty.h"
#include "faultinj/injector.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "uncertainty_common.h"

namespace {

using namespace rascal;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Scaling {
  std::vector<double> seconds;  // aligned with kThreadCounts
  bool deterministic = true;
};

Scaling time_uncertainty(std::size_t samples) {
  const models::JsasConfig config = models::JsasConfig::config1();
  const auto ranges = benchutil::paper_ranges();
  const analysis::ContextModelFunction model =
      [&config](const expr::ParameterSet& params, ctmc::SolveCache& cache) {
        return models::solve_jsas(config, params, cache)
            .downtime_minutes_per_year;
      };

  Scaling scaling;
  analysis::UncertaintyOptions options;
  options.samples = samples;
  options.seed = 2004;
  options.threads = 1;
  const auto reference = analysis::uncertainty_analysis(
      model, models::default_parameters(), ranges, options);
  for (std::size_t threads : kThreadCounts) {
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const auto result = analysis::uncertainty_analysis(
        model, models::default_parameters(), ranges, options);
    scaling.seconds.push_back(seconds_since(start));
    scaling.deterministic =
        scaling.deterministic && result.mean == reference.mean &&
        result.interval80.lower == reference.interval80.lower &&
        result.interval90.upper == reference.interval90.upper &&
        result.metrics == reference.metrics;
  }
  return scaling;
}

Scaling time_campaign(std::size_t trials) {
  Scaling scaling;
  faultinj::CampaignOptions options;
  options.trials = trials;
  options.threads = 1;
  const auto reference = faultinj::run_campaign(options);
  for (std::size_t threads : kThreadCounts) {
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const auto result = faultinj::run_campaign(options);
    scaling.seconds.push_back(seconds_since(start));
    scaling.deterministic =
        scaling.deterministic && result.successes == reference.successes &&
        result.hadb_restart_times.mean() ==
            reference.hadb_restart_times.mean() &&
        result.as_restart_times.mean() == reference.as_restart_times.mean();
  }
  return scaling;
}

void print_table(const char* name, const Scaling& scaling) {
  std::printf("%s\n", name);
  for (std::size_t i = 0; i < scaling.seconds.size(); ++i) {
    std::printf("  %zu thread%s : %8.3f s   speedup %.2fx\n",
                kThreadCounts[i], kThreadCounts[i] == 1 ? " " : "s",
                scaling.seconds[i],
                scaling.seconds[0] / scaling.seconds[i]);
  }
  std::printf("  bit-identical across thread counts: %s\n\n",
              scaling.deterministic ? "yes" : "NO");
}

void write_json(const std::string& path, std::size_t samples,
                std::size_t trials, const Scaling& uncertainty,
                const Scaling& campaign) {
  std::ofstream out(path);
  const auto emit = [&](const char* name, std::size_t size,
                        const Scaling& scaling, bool last) {
    out << "    \"" << name << "\": {\n"
        << "      \"size\": " << size << ",\n"
        << "      \"seconds_by_threads\": {";
    for (std::size_t i = 0; i < scaling.seconds.size(); ++i) {
      out << (i ? ", " : "") << "\"" << kThreadCounts[i]
          << "\": " << scaling.seconds[i];
    }
    out << "},\n"
        << "      \"speedup_at_8_threads\": "
        << scaling.seconds.front() / scaling.seconds.back() << ",\n"
        << "      \"deterministic\": "
        << (scaling.deterministic ? "true" : "false") << "\n"
        << "    }" << (last ? "\n" : ",\n");
  };
  out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"workloads\": {\n";
  emit("fig7_uncertainty", samples, uncertainty, false);
  emit("faultinj_campaign", trials, campaign, true);
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t samples = 1000;
  std::size_t trials = 3287;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--samples") == 0) {
      const char* value = next();
      if (value) samples = std::stoul(value);
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      const char* value = next();
      if (value) trials = std::stoul(value);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* value = next();
      if (value) json_path = value;
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_scaling [--samples N] "
                   "[--trials N] [--json FILE]\n");
      return 2;
    }
  }

  std::printf("=== Parallel scaling (hardware_concurrency = %u) ===\n\n",
              std::thread::hardware_concurrency());
  const Scaling uncertainty = time_uncertainty(samples);
  print_table("Figure 7 uncertainty workload", uncertainty);
  const Scaling campaign = time_campaign(trials);
  print_table("Fault-injection campaign", campaign);

  if (!json_path.empty()) {
    write_json(json_path, samples, trials, uncertainty, campaign);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return uncertainty.deterministic && campaign.deterministic ? 0 : 1;
}

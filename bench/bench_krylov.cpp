// Sparse Krylov engine microbenchmarks (ISSUE 7): GMRES(m) and
// BiCGStab stationary solves on the k-of-n replicated-AS family,
// ILU(0) factorization cost, and the dense GTH comparison point at
// the largest size where a dense Matrix is still reasonable.  Tracked
// in the BENCH_krylov.json trajectory; google-benchmark binary.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "linalg/gth.h"
#include "linalg/krylov.h"
#include "linalg/precond.h"
#include "linalg/workspace.h"
#include "models/kofn_as.h"

namespace {

using namespace rascal;

models::KofnAsConfig config_for(std::size_t nodes) {
  models::KofnAsConfig config;
  config.nodes = nodes;
  config.quorum = (2 * nodes + 2) / 3;  // two-thirds quorum
  config.repair_crews = 2;
  return config;
}

// 3^6 = 729, 3^8 = 6561, 3^10 = 59049 states.
void BM_GmresIlu0Stationary(benchmark::State& state) {
  const auto model =
      models::kofn_as_sparse_model(config_for(
          static_cast<std::size_t>(state.range(0))));
  linalg::SolveWorkspace workspace;
  linalg::KrylovOptions options;
  options.precond = linalg::PrecondKind::kIlu0;
  options.workspace = &workspace;
  for (auto _ : state) {
    auto result = linalg::gmres_stationary(model.generator, options);
    benchmark::DoNotOptimize(result.x.data());
    if (!result.converged) state.SkipWithError("gmres did not converge");
  }
  state.counters["states"] = static_cast<double>(model.generator.rows());
  state.counters["nnz"] = static_cast<double>(model.generator.non_zeros());
}
BENCHMARK(BM_GmresIlu0Stationary)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

void BM_GmresJacobiStationary(benchmark::State& state) {
  const auto model =
      models::kofn_as_sparse_model(config_for(
          static_cast<std::size_t>(state.range(0))));
  linalg::SolveWorkspace workspace;
  linalg::KrylovOptions options;
  options.precond = linalg::PrecondKind::kJacobi;
  options.workspace = &workspace;
  for (auto _ : state) {
    auto result = linalg::gmres_stationary(model.generator, options);
    benchmark::DoNotOptimize(result.x.data());
    if (!result.converged) state.SkipWithError("gmres did not converge");
  }
}
BENCHMARK(BM_GmresJacobiStationary)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_BiCgStabIlu0Stationary(benchmark::State& state) {
  const auto model =
      models::kofn_as_sparse_model(config_for(
          static_cast<std::size_t>(state.range(0))));
  linalg::SolveWorkspace workspace;
  linalg::KrylovOptions options;
  options.precond = linalg::PrecondKind::kIlu0;
  options.workspace = &workspace;
  for (auto _ : state) {
    auto result = linalg::bicgstab_stationary(model.generator, options);
    benchmark::DoNotOptimize(result.x.data());
    if (!result.converged) state.SkipWithError("bicgstab did not converge");
  }
}
BENCHMARK(BM_BiCgStabIlu0Stationary)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

void BM_Ilu0Factorization(benchmark::State& state) {
  const auto model =
      models::kofn_as_sparse_model(config_for(
          static_cast<std::size_t>(state.range(0))));
  const linalg::CsrMatrix a = linalg::stationary_system(model.generator);
  for (auto _ : state) {
    auto precond =
        linalg::make_preconditioner(linalg::PrecondKind::kIlu0, a);
    benchmark::DoNotOptimize(precond.get());
  }
  state.counters["nnz"] = static_cast<double>(a.non_zeros());
}
BENCHMARK(BM_Ilu0Factorization)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

// The dense comparison point the sparse engine replaces: GTH on the
// 729-state tier (already ~4.3 MB of Matrix; 3^10 would be 28 GB).
void BM_DenseGthStationary(benchmark::State& state) {
  const auto model =
      models::kofn_as_sparse_model(config_for(
          static_cast<std::size_t>(state.range(0))));
  const linalg::Matrix q = model.generator.to_dense();
  for (auto _ : state) {
    auto pi = linalg::gth_stationary(q);
    benchmark::DoNotOptimize(pi.data());
  }
}
BENCHMARK(BM_DenseGthStationary)->Arg(6)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

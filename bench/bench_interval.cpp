// Extension: interval (finite-mission) availability, the metric of
// the paper's companion reference [18] ("Hierarchical Evaluation of
// Interval Availability in RAScad").  Computes, for the Figure-2
// system abstraction of Config 1, the expected fraction of a mission
// of length T that the system is up, starting from the all-up state,
// and the point availability at T — both by uniformization.
#include <cstdio>
#include <iostream>

#include "ctmc/transient.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "sim/ctmc_simulator.h"
#include "stats/summary.h"

int main() {
  using namespace rascal;

  std::cout << "=== Extension: interval availability (Config 1, Figure 2 "
               "abstraction) ===\n\n";

  // Solve the hierarchy once to obtain the root model with its
  // equivalent rates bound.
  const auto result =
      models::solve_jsas(models::JsasConfig::config1(),
                         models::default_parameters());
  const auto& params = result.detail.effective_params;

  ctmc::SymbolicCtmc root;
  root.state("Ok", 1.0);
  root.state("AS_Fail", 0.0);
  root.state("HADB_Fail", 0.0);
  root.rate("Ok", "AS_Fail", "La_appl");
  root.rate("AS_Fail", "Ok", "Mu_appl");
  root.rate("Ok", "HADB_Fail", "N_pair*La_hadb_pair");
  root.rate("HADB_Fail", "Ok", "Mu_hadb_pair");
  const ctmc::Ctmc chain = root.bind(params);
  const auto ok = chain.state("Ok");

  linalg::Vector start(chain.num_states(), 0.0);
  start[ok] = 1.0;

  std::printf("steady-state availability: %.9f\n\n", result.availability);
  std::printf("  %-12s %-22s %-22s %s\n", "mission T", "interval avail.",
              "expected downtime", "point avail. at T");
  struct Mission {
    const char* label;
    double hours;
  };
  for (const Mission mission : {Mission{"1 hour", 1.0},
                                Mission{"1 day", 24.0},
                                Mission{"1 week", 168.0},
                                Mission{"1 month", 730.0},
                                Mission{"1 year", 8760.0}}) {
    const auto interval =
        ctmc::expected_interval_reward(chain, start, mission.hours);
    const auto point =
        ctmc::transient_distribution(chain, start, mission.hours);
    std::printf("  %-12s %.12f        %8.4f s            %.9f\n",
                mission.label, interval.time_averaged,
                (1.0 - interval.time_averaged) * mission.hours * 3600.0,
                point.probabilities[ok]);
  }
  std::cout
      << "\nReading: starting from the all-up state the system banks\n"
         "availability early (interval availability above the steady\n"
         "state), converging to the steady-state value over missions of\n"
         "months -- the paper's yearly-downtime numbers are effectively\n"
         "the asymptote.\n\n";

  // Distribution (not just expectation) of one-year interval
  // availability, by simulating the same chain: most years see zero
  // outages, a minority eat a whole restore interval.
  sim::CtmcSimOptions sim_options;
  sim_options.duration = 8760.0;
  sim_options.replications = 4000;
  sim_options.seed = 99;
  sim_options.initial_state = ok;
  const auto sim_result = sim::simulate_ctmc(chain, sim_options);
  const auto& years = sim_result.replication_availabilities;
  std::printf("Distribution of 1-year interval availability (%zu simulated "
              "years):\n",
              years.size());
  std::printf("  mean              : %.9f (analytic expectation %.9f)\n",
              sim_result.availability,
              ctmc::expected_interval_reward(chain, start, 8760.0)
                  .time_averaged);
  std::printf("  P(zero downtime)  : %.1f%%\n",
              stats::fraction_below(years, 1.0) < 1.0
                  ? (1.0 - stats::fraction_below(years, 1.0)) * 100.0
                  : 0.0);
  std::printf("  10th percentile   : %.9f\n",
              stats::percentile(years, 0.10));
  std::printf("  1st percentile    : %.9f\n",
              stats::percentile(years, 0.01));
  return 0;
}

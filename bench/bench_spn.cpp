// SPN substrate microbenchmarks: reachability-graph generation and
// vanishing-marking elimination cost for the paper's models and for
// growing synthetic nets.  google-benchmark binary.
#include <benchmark/benchmark.h>

#include "models/params.h"
#include "models/spn_variants.h"
#include "spn/reachability.h"

namespace {

using namespace rascal;

void BM_HadbPairGeneration(benchmark::State& state) {
  const auto params = models::default_parameters();
  const auto net = models::hadb_pair_spn(params);
  const auto reward = models::hadb_pair_spn_reward();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spn::generate_ctmc(net, reward));
  }
}
BENCHMARK(BM_HadbPairGeneration);

void BM_AppServerGeneration(benchmark::State& state) {
  const auto params = models::default_parameters();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto net = models::app_server_spn(n, params);
  const auto reward = models::app_server_spn_reward();
  std::size_t states_generated = 0;
  for (auto _ : state) {
    const auto generated = spn::generate_ctmc(net, reward);
    states_generated = generated.chain.num_states();
    benchmark::DoNotOptimize(generated);
  }
  state.counters["tangible_states"] =
      static_cast<double>(states_generated);
}
BENCHMARK(BM_AppServerGeneration)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

// Synthetic fork-join net whose tangible state space grows with the
// token count: k tokens circulating through a 4-stage pipeline.
spn::PetriNet pipeline_net(std::uint32_t tokens) {
  spn::PetriNet net;
  const auto p0 = net.add_place("stage0", tokens);
  const auto p1 = net.add_place("stage1");
  const auto p2 = net.add_place("stage2");
  const auto p3 = net.add_place("stage3");
  const spn::PlaceId places[] = {p0, p1, p2, p3};
  for (int k = 0; k < 4; ++k) {
    const auto t = net.add_timed_transition(
        "t" + std::to_string(k),
        [from = places[k]](const spn::Marking& m) {
          return static_cast<double>(m[from]);
        });
    net.input_arc(t, places[k]).output_arc(t, places[(k + 1) % 4]);
  }
  return net;
}

void BM_PipelineReachability(benchmark::State& state) {
  const auto net = pipeline_net(static_cast<std::uint32_t>(state.range(0)));
  std::size_t states_generated = 0;
  for (auto _ : state) {
    const auto generated =
        spn::generate_ctmc(net, [](const spn::Marking&) { return 1.0; });
    states_generated = generated.chain.num_states();
    benchmark::DoNotOptimize(generated);
  }
  state.counters["tangible_states"] =
      static_cast<double>(states_generated);
}
BENCHMARK(BM_PipelineReachability)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();

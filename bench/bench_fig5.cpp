// Reproduces Figure 5: sensitivity of Config 1 availability to the AS
// node HW/OS failure recovery time (Tstart_long swept 0.5 - 3 h).
#include <cstdio>
#include <iostream>

#include "analysis/parametric.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "report/ascii_plot.h"

int main() {
  using namespace rascal;

  std::cout << "=== Figure 5: Availability vs AS HW/OS recovery time, "
               "Config 1 ===\n\n";

  const analysis::ContextModelFunction availability =
      [](const expr::ParameterSet& params, ctmc::SolveCache& cache) {
        return models::solve_jsas(models::JsasConfig::config1(), params,
                                  cache)
            .availability;
      };
  const auto xs = analysis::linspace(0.5, 3.0, 11);
  const auto sweep = analysis::parametric_sweep(
      availability, models::default_parameters(), "as_Tstart_long", xs);

  std::vector<double> ys;
  std::printf("  %-18s %-14s %s\n", "Tstart_long (h)", "Availability",
              "Yearly downtime (min)");
  for (const auto& point : sweep) {
    ys.push_back(point.metric);
    std::printf("  %-18.2f %.7f      %.3f%s\n", point.parameter_value,
                point.metric, (1.0 - point.metric) * 8760.0 * 60.0,
                point.metric < 0.99999 ? "   <- below five 9s" : "");
  }

  report::PlotOptions options;
  options.title = "\nParametric Analysis of Availability for Config 1";
  options.x_label = "Tstart_long (hours)";
  std::cout << report::line_plot(xs, ys, options);
  std::cout << "\nPaper: five 9s (A >= 0.99999) lost when the recovery time "
               "reaches ~2.5 hours.\n";
  return 0;
}

// Reproduces Table 2: system results for Config 1 and Config 2 —
// availability, yearly downtime, and the split between the
// Application Server and HADB submodels.
#include <cstdio>
#include <iostream>

#include "models/jsas_system.h"
#include "models/params.h"
#include "report/table.h"

namespace {

struct PaperRow {
  const char* config;
  double availability;
  double downtime;
  const char* yd_as;
  const char* yd_hadb;
};

}  // namespace

int main() {
  using namespace rascal;

  std::cout << "=== Table 2: System Results ===\n"
            << "(paper values in parentheses)\n\n";

  const PaperRow paper[] = {
      {"Config 1 (2 AS / 2 pairs)", 0.9999933, 3.5, "2.35 min (67%)",
       "1.15 min (33%)"},
      {"Config 2 (4 AS / 4 pairs)", 0.9999956, 2.3, "0.01 sec (<0.01%)",
       "2.3 min (99.99%)"},
  };
  const models::JsasConfig configs[] = {models::JsasConfig::config1(),
                                        models::JsasConfig::config2()};

  report::TextTable table({"Configuration", "Availability", "Yearly Downtime",
                           "YD due to AS", "YD due to HADB"});
  for (std::size_t i = 0; i < 2; ++i) {
    const auto r =
        models::solve_jsas(configs[i], models::default_parameters());
    const double as_share =
        r.downtime_as_minutes / r.downtime_minutes_per_year * 100.0;
    const double hadb_share =
        r.downtime_hadb_minutes / r.downtime_minutes_per_year * 100.0;
    table.add_row(
        {paper[i].config,
         report::format_percent(r.availability, 5) + "  (" +
             report::format_percent(paper[i].availability, 5) + ")",
         report::format_fixed(r.downtime_minutes_per_year, 2) + " min  (" +
             report::format_fixed(paper[i].downtime, 1) + " min)",
         report::format_fixed(r.downtime_as_minutes, 2) + " min / " +
             report::format_fixed(as_share, 1) + "%  (" + paper[i].yd_as +
             ")",
         report::format_fixed(r.downtime_hadb_minutes, 2) + " min / " +
             report::format_fixed(hadb_share, 2) + "%  (" + paper[i].yd_hadb +
             ")"});
  }
  std::cout << table.to_string() << "\n";

  // Submodel-level detail, as RAScad would report it.
  std::cout << "Submodel two-state equivalents (Config 1):\n";
  const auto detail =
      models::solve_jsas(models::JsasConfig::config1(),
                         models::default_parameters())
          .detail;
  for (const auto& sub : detail.submodels) {
    std::printf("  %-16s lambda_eq = %.4e /h   mu_eq = %.4f /h   A = %.9f\n",
                sub.name.c_str(), sub.equivalent.lambda_eq,
                sub.equivalent.mu_eq, sub.metrics.availability);
  }
  return 0;
}

// Reproduces Figure 8: multivariate uncertainty analysis of yearly
// downtime for Config 2 (paper: mean 2.99 min, 80% CI (1.01, 5.19),
// 90% CI (0.74, 5.74), >90% of systems above five 9s).
#include "uncertainty_common.h"

int main() {
  rascal::benchutil::run_uncertainty_figure(
      rascal::models::JsasConfig::config2(), "Figure 8",
      {2.99, 1.01, 5.19, 0.74, 5.74, 0.90});
  return 0;
}

// Ablation (DESIGN.md #2): hierarchical composition vs an exact flat
// model.  The Figure 2 hierarchy abstracts each submodel to a
// two-state equivalent; here we measure the error that introduces by
// also solving the exact cross-product chain (AS x HADB^N_pair) built
// from the same submodels.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/metrics.h"
#include "ctmc/compose.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "models/jsas_system.h"
#include "models/params.h"

using namespace rascal;

int main() {
  std::cout << "=== Ablation: hierarchical abstraction vs exact flat model "
               "===\n\n";
  const auto params = models::default_parameters();

  for (std::size_t pairs : {1, 2}) {
    models::JsasConfig config{2, pairs, 2};
    const auto hierarchical = models::solve_jsas(config, params);

    std::vector<ctmc::Ctmc> parts;
    parts.push_back(models::app_server_two_instance_model().bind(params));
    for (std::size_t p = 0; p < pairs; ++p) {
      parts.push_back(models::hadb_pair_model().bind(params));
    }
    const ctmc::Ctmc flat = ctmc::compose_independent(parts);
    const auto exact = core::solve_availability(flat);

    std::printf("Config: 2 AS instances, %zu HADB pair(s)\n", pairs);
    std::printf("  flat model size        : %zu states\n", flat.num_states());
    std::printf("  exact unavailability   : %.6e  (%.4f min/yr)\n",
                exact.unavailability, exact.downtime_minutes_per_year);
    std::printf("  hierarchical estimate  : %.6e  (%.4f min/yr)\n",
                1.0 - hierarchical.availability,
                hierarchical.downtime_minutes_per_year);
    const double rel_err =
        std::abs((1.0 - hierarchical.availability) - exact.unavailability) /
        exact.unavailability;
    std::printf("  relative error         : %.3e\n", rel_err);
    std::printf("  exact MTBF             : %.0f h   hierarchical: %.0f h\n\n",
                exact.mtbf_hours, hierarchical.mtbf_hours);
  }

  std::cout
      << "Reading: the two-state-equivalent hierarchy (RAScad's Figure 2\n"
         "mechanism) matches the exact cross-product chain to a relative\n"
         "error far below the paper's printed precision, because the\n"
         "submodels' failures are rare and nearly independent.\n";
  return 0;
}

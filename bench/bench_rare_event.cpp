// Extension ablation: rare-event simulation.  At five-9s
// availability, how do plain trajectory simulation, unbiased
// regenerative simulation, and failure-biased importance sampling
// compare at equal cycle budgets?  Ground truth comes from the GTH
// solver.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/metrics.h"
#include "models/hadb_pair.h"
#include "models/params.h"
#include "report/table.h"
#include "sim/importance_sampling.h"

int main() {
  using namespace rascal;

  std::cout << "=== Rare-event estimation of HADB pair unavailability ===\n";
  const auto chain =
      models::hadb_pair_model().bind(models::default_parameters());
  const double exact = core::solve_availability(chain).unavailability;
  std::printf("analytic (GTH) unavailability: %.6e\n\n", exact);

  report::TextTable table({"Estimator", "Cycles", "Estimate", "Rel. error",
                           "95% CI half-width", "Cycles w/ downtime"});
  for (const std::size_t cycles : {2000, 10000, 50000}) {
    for (const double bias : {0.0, 0.3, 0.5, 0.7}) {
      sim::ImportanceSamplingOptions options;
      options.cycles = cycles;
      options.plain_cycles = cycles;
      options.failure_bias = bias;
      options.seed = 11 + cycles;
      const auto result = sim::estimate_unavailability(chain, options);
      const double rel_err =
          std::abs(result.unavailability - exact) / exact;
      table.add_row(
          {bias == 0.0 ? "plain regenerative"
                       : "IS, bias " + report::format_fixed(bias, 1),
           std::to_string(cycles),
           report::format_general(result.unavailability, 4),
           report::format_percent(rel_err, 1),
           report::format_percent(result.relative_half_width, 1),
           std::to_string(result.cycles_observing_downtime)});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout
      << "Reading: unbiased cycles almost never witness a pair failure\n"
         "(the event needs a second fault inside a minutes-long window),\n"
         "so the plain estimate rides on a handful of lucky cycles and\n"
         "its CI spans the estimate itself.  Balanced failure biasing\n"
         "makes half the cycles observe downtime and delivers\n"
         "few-percent relative error at the same budget -- this is why\n"
         "availability studies lean on analytic models or IS, never on\n"
         "straight simulation.\n";
  return 0;
}

// Reproduces the statistical estimates of Section 5, driven by the
// paper's equations:
//   Equation (1): FIR < 0.1% @95% / < 0.2% @99.5% from 3,287
//                 zero-failure fault injections.
//   Equation (2): AS failure rate < 1/16 days @95% / < 1/9 days @99.5%
//                 from the 24-day, 2-instance, zero-failure run.
#include <cstdio>
#include <iostream>

#include "faultinj/injector.h"
#include "stats/estimators.h"

int main() {
  using namespace rascal;

  std::cout << "=== Section 5 estimators ===\n\n";

  // --- Equation (1), fed by the simulated campaign -------------------
  faultinj::CampaignOptions options;
  options.trials = 3287;
  const auto campaign = faultinj::run_campaign(options);
  std::printf("Fault injection campaign: %llu trials, %llu successes\n",
              static_cast<unsigned long long>(campaign.trials),
              static_cast<unsigned long long>(campaign.successes));
  const double fir95 = campaign.fir_upper_bound(0.95);
  const double fir995 = campaign.fir_upper_bound(0.995);
  std::printf(
      "  Equation (1): FIR <= %.4f%% at 95%%   (paper: below 0.1%%)\n",
      fir95 * 100.0);
  std::printf(
      "  Equation (1): FIR <= %.4f%% at 99.5%% (paper: below 0.2%%)\n\n",
      fir995 * 100.0);

  // --- Equation (2), fed by the simulated longevity run --------------
  stats::RandomEngine rng(42);
  const auto failures = faultinj::simulate_longevity(
      /*days=*/24.0, /*machines=*/2, /*true_rate_per_day=*/0.0, rng);
  const double exposure_days = 24.0 * 2.0;
  std::printf("Longevity run: %.0f machine-days, %llu failures observed\n",
              exposure_days, static_cast<unsigned long long>(failures));
  const double l95 =
      stats::failure_rate_upper_bound(exposure_days, failures, 0.95);
  const double l995 =
      stats::failure_rate_upper_bound(exposure_days, failures, 0.995);
  std::printf(
      "  Equation (2): lambda_max = 1/%.1f days at 95%%   (paper: 1/16)\n",
      1.0 / l95);
  std::printf(
      "  Equation (2): lambda_max = 1/%.1f days at 99.5%% (paper: 1/9)\n\n",
      1.0 / l995);

  std::printf(
      "Conservatism check: the model's La = 52/yr = 1/%.1f days exceeds the "
      "95%% bound (%.1f/yr), as the paper intends.\n",
      365.25 / 52.0, l95 * 365.25);

  // Two-sided interval, for completeness.
  const auto interval =
      stats::failure_rate_interval(exposure_days, failures, 0.9);
  std::printf(
      "  90%% two-sided rate interval: [%.4f, %.4f] per machine-day\n",
      interval.lower, interval.upper);
  return 0;
}

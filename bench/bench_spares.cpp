// Extension ablation: how much does the paper's "a spare is always
// available" assumption (Figure 3) flatter the HADB tier?  Sweeps the
// explicit spare-pool model over pool size and physical-replacement
// SLA, reporting per-pair downtime against the Figure 3 limit.
#include <cstdio>
#include <iostream>

#include "core/metrics.h"
#include "models/hadb_pair.h"
#include "models/hadb_spares.h"
#include "models/params.h"
#include "report/table.h"

int main() {
  using namespace rascal;

  std::cout << "=== Extension: finite HADB spare pool vs Figure 3 ===\n\n";

  const auto base = models::default_parameters();
  const auto figure3 =
      core::solve_availability(models::hadb_pair_model().bind(base));
  std::printf("Figure 3 (always-a-spare) per-pair downtime: %.4f min/yr\n\n",
              figure3.downtime_minutes_per_year);

  report::TextTable table({"Spares", "Replenish SLA", "Downtime (min/yr)",
                           "vs Figure 3", "MTBF (hr)"});
  for (const double sla_days : {1.0, 7.0, 30.0}) {
    for (const std::size_t spares : {1, 2, 4}) {
      expr::ParameterSet params = base;
      params.set(models::kTreplenishParam, sla_days * 24.0);
      const auto m = core::solve_availability(
          models::hadb_pair_with_spares_model(spares, params));
      table.add_row(
          {std::to_string(spares),
           report::format_fixed(sla_days, 0) + " day(s)",
           report::format_fixed(m.downtime_minutes_per_year, 4),
           "+" + report::format_percent(
                     m.downtime_minutes_per_year /
                             figure3.downtime_minutes_per_year -
                         1.0,
                     2),
           report::format_fixed(m.mtbf_hours, 0)});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout
      << "Reading: with the paper's provisioning (2 spares) and a\n"
         "same-week replacement SLA, the always-a-spare assumption of\n"
         "Figure 3 is accurate to ~2%, so the simplification is justified\n"
         "for the lab deployment.  Under a 30-day SLA, or with a single\n"
         "spare, the WaitSpare exposure doubles (or worse) the per-pair\n"
         "downtime -- spare logistics belong in the model for slower\n"
         "operations.\n";
  return 0;
}

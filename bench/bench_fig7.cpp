// Reproduces Figure 7: multivariate uncertainty analysis of yearly
// downtime for Config 1 (paper: mean 3.78 min, 80% CI (1.89, 6.02),
// 90% CI (1.56, 6.88), >80% of systems above five 9s).
#include "uncertainty_common.h"

int main() {
  rascal::benchutil::run_uncertainty_figure(
      rascal::models::JsasConfig::config1(), "Figure 7",
      {3.78, 1.89, 6.02, 1.56, 6.88, 0.80});
  return 0;
}

// Uncertainty study on a user-defined model (not one of the paper's):
// a two-region active/passive deployment with DNS failover.  Shows
// the full workflow: symbolic model -> parameter ranges -> Monte
// Carlo -> confidence intervals and parameter importance.
#include <cstdio>
#include <iostream>

#include "analysis/sensitivity.h"
#include "analysis/uncertainty.h"
#include "core/metrics.h"
#include "core/units.h"
#include "ctmc/builder.h"

int main() {
  using namespace rascal;
  using core::minutes;
  using core::per_year;

  // Active region fails -> DNS failover to the passive region (brief
  // outage); with probability 1-c the failover itself fails and an
  // operator intervenes.  The passive region can be down for
  // maintenance when the active one fails: full outage.
  ctmc::SymbolicCtmc model;
  model.state("ActiveServing", 1.0);
  model.state("Failover", 0.0);          // DNS switch in progress
  model.state("PassiveServing", 1.0);    // running on the backup
  model.state("OperatorRecovery", 0.0);  // failover failed
  model.rate("ActiveServing", "Failover", "La_region*c");
  model.rate("ActiveServing", "OperatorRecovery", "La_region*(1-c)");
  model.rate("Failover", "PassiveServing", "1/T_dns");
  model.rate("PassiveServing", "ActiveServing", "1/T_rebuild");
  model.rate("PassiveServing", "OperatorRecovery", "La_region");
  model.rate("OperatorRecovery", "ActiveServing", "1/T_operator");

  const expr::ParameterSet base{{"La_region", per_year(6.0)},
                                {"c", 0.95},
                                {"T_dns", minutes(3.0)},
                                {"T_rebuild", 24.0},
                                {"T_operator", 1.5}};

  const analysis::ModelFunction downtime =
      [&model](const expr::ParameterSet& params) {
        return core::solve_availability(model.bind(params))
            .downtime_minutes_per_year;
      };

  std::printf("Point estimate: %.1f min/yr downtime (availability %.5f%%)\n\n",
              downtime(base),
              core::solve_availability(model.bind(base)).availability *
                  100.0);

  // The team cannot measure these precisely: sample them.
  const std::vector<stats::ParameterRange> ranges = {
      {"La_region", per_year(2.0), per_year(12.0)},
      {"c", 0.90, 0.999},
      {"T_dns", minutes(1.0), minutes(10.0)},
      {"T_operator", 0.5, 4.0}};

  analysis::UncertaintyOptions options;
  options.samples = 1000;
  options.seed = 7;
  const auto result =
      analysis::uncertainty_analysis(downtime, base, ranges, options);

  std::printf("Across 1,000 sampled operating points:\n");
  std::printf("  mean downtime : %.1f min/yr\n", result.mean);
  std::printf("  80%% interval  : (%.1f, %.1f) min/yr\n",
              result.interval80.lower, result.interval80.upper);
  std::printf("  90%% interval  : (%.1f, %.1f) min/yr\n",
              result.interval90.lower, result.interval90.upper);
  std::printf("  P(four 9s)    : %.1f%% of systems under 52.6 min/yr\n\n",
              result.fraction_below(52.56) * 100.0);

  std::cout << "Parameter importance (Spearman rank correlation with "
               "downtime):\n";
  for (const auto& entry : analysis::parameter_importance(result, ranges)) {
    std::printf("  %-12s rho = %+.3f\n", entry.parameter.c_str(),
                entry.rank_correlation);
  }
  return 0;
}

// Planning online upgrades with the dual-cluster extension: how often
// can we ship, and how fast must the traffic cut-over be, before
// planned downtime eats the availability budget?
//
// The paper models a single cluster and leaves online upgrades out of
// scope; this example answers the question its conclusions raise for
// a deployment team with a weekly release train.
#include <cstdio>
#include <iostream>

#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "models/upgrade.h"
#include "report/table.h"

int main() {
  using namespace rascal;

  const auto base = models::default_parameters();
  const auto single = models::solve_jsas(models::JsasConfig::config1(), base);
  std::printf(
      "Single 2x2 cluster (no online upgrades): %.2f min/yr downtime.\n"
      "Budget: stay at or below that while shipping weekly.\n\n",
      single.downtime_minutes_per_year);

  report::TextTable table({"Cut-over time", "Downtime (min/yr)",
                           "Within budget?", "Full outages / century"});
  for (const double switch_seconds : {60.0, 30.0, 10.0, 5.0, 2.0}) {
    const auto params = models::upgrade_parameters_for(
        base, 2, 2, /*upgrades_per_year=*/52.0, /*t_upgrade_hours=*/2.0,
        switch_seconds / 3600.0);
    const auto chain = models::dual_cluster_upgrade_model().bind(params);
    const auto steady = ctmc::solve_steady_state(chain);
    const auto metrics = core::availability_metrics(chain, steady);

    // Unplanned full outages (both clusters down), as opposed to the
    // planned cut-over blips that dominate the downtime number.
    const auto all_down = chain.state("AllDown");
    double full_outage_rate = 0.0;
    for (const ctmc::Transition& t : chain.transitions()) {
      if (t.to == all_down) {
        full_outage_rate += steady.probability(t.from) * t.rate;
      }
    }
    table.add_row(
        {report::format_fixed(switch_seconds, 0) + " s",
         report::format_fixed(metrics.downtime_minutes_per_year, 2),
         metrics.downtime_minutes_per_year <=
                 single.downtime_minutes_per_year
             ? "yes"
             : "no",
         report::format_fixed(full_outage_rate * 8760.0 * 100.0, 2)});
  }
  std::cout << table.to_string() << "\n";

  std::cout
      << "Decision: a weekly train fits the availability budget only if\n"
         "the cut-over completes in under ~4 seconds (52 x 4 s = 3.5\n"
         "min/yr).  That is precisely the capability the paper's HTTP\n"
         "session persistence in HADB provides: the new cluster restores\n"
         "conversational state from the session store, so the switch is\n"
         "a load-balancer flip, not a user-visible restart.\n";
  return 0;
}

// Runs the Section 3 fault-injection campaign against the simulated
// JSAS testbed and derives model parameters from it the way the paper
// does: the Equation-1 FIR bound and conservative recovery times.
#include <cstdio>
#include <iostream>

#include "faultinj/injector.h"
#include "report/table.h"

int main() {
  using namespace rascal;

  std::cout << "Running 3,287 fault injections against the simulated "
               "testbed...\n\n";

  faultinj::CampaignOptions options;
  options.trials = 3287;
  options.seed = 20040628;  // DSN'04 conference date
  const auto campaign = faultinj::run_campaign(options);

  std::printf("Outcome: %llu/%llu recoveries successful\n\n",
              static_cast<unsigned long long>(campaign.successes),
              static_cast<unsigned long long>(campaign.trials));

  report::TextTable table({"Confidence", "FIR upper bound", "Use"});
  table.add_row({"95%",
                 report::format_percent(campaign.fir_upper_bound(0.95), 3),
                 "model default (paper: 0.1%)"});
  table.add_row({"99.5%",
                 report::format_percent(campaign.fir_upper_bound(0.995), 3),
                 "uncertainty-range top (paper: 0.2%)"});
  std::cout << table.to_string() << "\n";

  std::cout << "Recovery-time measurements -> conservative model "
               "parameters:\n";
  std::printf("  HADB restart  measured mean %4.0f s -> round up to 60 s\n",
              campaign.hadb_restart_times.mean() * 3600.0);
  std::printf("  spare rebuild measured mean %4.1f min -> round up to 30 min"
              " (configuration headroom)\n",
              campaign.hadb_rebuild_times.mean() * 60.0);
  std::printf("  AS restart    measured mean %4.0f s -> 90 s after adding "
              "the load-balancer health-check interval\n",
              campaign.as_restart_times.mean() * 3600.0);

  // What if the recovery handlers were buggier?  Re-run with a true
  // imperfect-recovery rate of 1% and watch the estimate respond.
  faultinj::CampaignOptions buggy = options;
  buggy.recovery.true_imperfect_recovery = 0.01;
  const auto degraded = faultinj::run_campaign(buggy);
  std::printf(
      "\nCounterfactual (true FIR = 1%%): %llu failures observed, bound at "
      "95%% becomes %.2f%% -- the estimator tracks reality.\n",
      static_cast<unsigned long long>(degraded.trials - degraded.successes),
      degraded.fir_upper_bound(0.95) * 100.0);
  return 0;
}

// Availability modeling via stochastic Petri nets: a RAID-style
// storage array with d data disks, one parity disk, and a hot spare,
// modeled at the token level and converted to a CTMC automatically.
//
// Shows the GSPN workflow the paper's tool lineage (SPNP/UltraSAN)
// popularized: places/transitions in, reward-weighted CTMC out.
#include <cstdio>
#include <iostream>

#include "core/metrics.h"
#include "core/units.h"
#include "spn/petri_net.h"
#include "spn/reachability.h"

int main() {
  using namespace rascal;
  using core::hours;
  using core::per_year;

  const std::uint32_t data_disks = 6;
  const double disk_failure_rate = per_year(1.5);
  const double rebuild_time = hours(8.0);
  const double replace_time = hours(48.0);  // order + swap a new disk

  spn::PetriNet net;
  const auto healthy = net.add_place("Healthy", data_disks + 1);
  const auto degraded = net.add_place("Degraded");  // rebuilding to spare
  const auto spares = net.add_place("Spare", 1);
  const auto dead = net.add_place("ArrayDown");

  // A disk fails; with a spare available the array degrades and
  // rebuilds.  Rate scales with the number of healthy disks.
  const auto fail = net.add_timed_transition(
      "disk_fail", [healthy, disk_failure_rate](const spn::Marking& m) {
        return static_cast<double>(m[healthy]) * disk_failure_rate;
      });
  net.input_arc(fail, healthy).output_arc(fail, degraded);
  net.set_guard(fail, [degraded, dead](const spn::Marking& m) {
    return m[degraded] == 0 && m[dead] == 0;
  });

  // Second failure while rebuilding = data loss (RAID-5 semantics).
  const auto double_fail = net.add_timed_transition(
      "second_fail", [healthy, disk_failure_rate](const spn::Marking& m) {
        return static_cast<double>(m[healthy]) * disk_failure_rate;
      });
  net.input_arc(double_fail, healthy)
      .input_arc(double_fail, degraded)
      .output_arc(double_fail, dead);

  // Rebuild onto the spare consumes it and returns to full strength.
  const auto rebuild = net.add_timed_transition("rebuild",
                                                1.0 / rebuild_time);
  net.input_arc(rebuild, degraded)
      .input_arc(rebuild, spares)
      .output_arc(rebuild, healthy);

  // With no spare left, the failed disk waits for a replacement.
  const auto replace = net.add_timed_transition("replace_disk",
                                                1.0 / replace_time);
  net.input_arc(replace, degraded).output_arc(replace, healthy);
  net.set_guard(replace,
                [spares](const spn::Marking& m) { return m[spares] == 0; });

  // Restocking the spare pool happens alongside normal operation.
  const auto restock = net.add_timed_transition("restock_spare",
                                                1.0 / replace_time);
  net.output_arc(restock, spares);
  net.set_guard(restock,
                [spares](const spn::Marking& m) { return m[spares] == 0; });

  // Catastrophic loss: the surviving disks are wiped too (immediate
  // flush keeps the net bounded), then a restore from backup rebuilds
  // the full array.
  const auto flush = net.add_immediate_transition("flush_survivors");
  net.input_arc(flush, healthy);
  net.set_guard(flush, [dead](const spn::Marking& m) { return m[dead] > 0; });
  const auto restore = net.add_timed_transition("restore_backup",
                                                1.0 / hours(72.0));
  net.input_arc(restore, dead).output_arc(restore, healthy, data_disks + 1);

  const auto generated = spn::generate_ctmc(
      net, [dead](const spn::Marking& m) {
        return m[dead] == 0 ? 1.0 : 0.0;
      });

  std::printf("tangible markings : %zu\n", generated.chain.num_states());
  const auto metrics = core::solve_availability(generated.chain);
  std::printf("availability      : %.6f%%\n", metrics.availability * 100.0);
  std::printf("yearly downtime   : %.1f minutes\n",
              metrics.downtime_minutes_per_year);
  std::printf("mean time to loss : %.0f hours (%.1f years)\n",
              metrics.mttf_hours, metrics.mttf_hours / 8760.0);

  std::cout << "\nReachable markings:\n";
  for (std::size_t i = 0; i < generated.chain.num_states(); ++i) {
    std::printf("  %-40s reward %.0f\n",
                generated.chain.state_name(i).c_str(),
                generated.chain.reward(i));
  }
  return 0;
}

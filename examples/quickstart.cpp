// Quickstart: build a small availability model, solve it, and read
// the standard RAS metrics.
//
//   $ ./quickstart
//
// Models a single web server that fails twice a month; 90% of
// failures are process crashes fixed by a 2-minute automatic restart,
// the rest need a 45-minute manual intervention.
#include <cstdio>

#include "core/metrics.h"
#include "core/units.h"
#include "ctmc/builder.h"
#include "ctmc/steady_state.h"

int main() {
  using namespace rascal;
  using core::minutes;
  using core::per_year;

  // 1. Declare states with reward rates (1 = service up, 0 = down).
  ctmc::CtmcBuilder builder;
  const auto up = builder.state("Up", 1.0);
  const auto crash = builder.state("CrashRestart", 0.0);
  const auto manual = builder.state("ManualRepair", 0.0);

  // 2. Wire transitions with rates in 1/hours (units helpers keep the
  //    call sites readable).
  const double failure_rate = per_year(24.0);
  builder.rate(up, crash, 0.9 * failure_rate);
  builder.rate(up, manual, 0.1 * failure_rate);
  builder.rate(crash, up, 1.0 / minutes(2.0));
  builder.rate(manual, up, 1.0 / minutes(45.0));

  // 3. Solve the steady state (GTH by default: stable for the widely
  //    spread rates availability models have) and compute metrics.
  const ctmc::Ctmc chain = builder.build();
  const core::AvailabilityMetrics metrics = core::solve_availability(chain);

  std::printf("availability      : %.6f%%\n", metrics.availability * 100.0);
  std::printf("yearly downtime   : %.2f minutes\n",
              metrics.downtime_minutes_per_year);
  std::printf("MTBF              : %.1f hours\n", metrics.mtbf_hours);
  std::printf("MTTR              : %.1f minutes\n",
              metrics.mttr_hours * 60.0);

  // 4. Downtime attribution per failure state.
  const auto steady = ctmc::solve_steady_state(chain);
  for (const auto& entry : core::downtime_by_state(chain, steady)) {
    std::printf("  %-14s %.2f min/yr\n",
                chain.state_name(entry.state).c_str(),
                entry.minutes_per_year);
  }
  return 0;
}

// Capacity-planning scenario from the paper's conclusions: "These
// results could be useful in planning data centers and web services
// deployments."
//
// A deployment team must pick an Application Server cluster size for
// a target of five 9s, under their own (site-specific) failure rates
// and a contractual 2-hour hardware-replacement SLA.  We sweep
// configurations, print the availability/cost frontier, and check the
// choice's robustness with a tornado analysis.
#include <cstdio>
#include <iostream>

#include "analysis/sensitivity.h"
#include "core/units.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "report/table.h"

int main() {
  using namespace rascal;
  using core::per_year;

  // Site-specific parameters: better-than-lab software (20 AS
  // failures/year) but slower hardware replacement (2 h).
  expr::ParameterSet site = models::default_parameters();
  site.set("as_La_as", per_year(20.0));
  site.set("as_Tstart_long", 2.0);

  std::cout << "=== Cluster sizing for a five-9s target ===\n\n";
  report::TextTable table({"AS instances", "HADB pairs", "Hosts (cost)",
                           "Availability", "Downtime (min/yr)",
                           "Meets 5x9s"});
  for (std::size_t n : {1, 2, 3, 4, 6, 8}) {
    const auto config = models::JsasConfig::symmetric(n);
    const auto r = models::solve_jsas(config, site);
    const std::size_t hosts =
        config.as_instances +
        (n == 1 ? 0 : 2 * config.hadb_pairs + config.hadb_spares);
    table.add_row({std::to_string(config.as_instances),
                   n == 1 ? "-" : std::to_string(config.hadb_pairs),
                   std::to_string(hosts),
                   report::format_percent(r.availability, 5),
                   report::format_fixed(r.downtime_minutes_per_year, 2),
                   r.downtime_minutes_per_year < 5.256 ? "yes" : "no"});
  }
  std::cout << table.to_string() << "\n";

  // Which parameter should the team negotiate hardest on?  Tornado
  // over the contractual/site-variable inputs for the 4x4 choice.
  const analysis::ModelFunction downtime =
      [](const expr::ParameterSet& params) {
        return models::solve_jsas(models::JsasConfig::config2(), params)
            .downtime_minutes_per_year;
      };
  const auto bars = analysis::tornado_analysis(
      downtime, site,
      std::vector<stats::ParameterRange>{
          {"as_Tstart_long", 0.5, 4.0},
          {"hadb_Trestore", 0.5, 4.0},
          {"hadb_FIR", 0.0, 0.002},
          {"as_La_as", per_year(10.0), per_year(50.0)},
          {"hadb_La_hw", per_year(0.5), per_year(2.0)}});

  std::cout << "Tornado analysis of yearly downtime (4x4 configuration):\n";
  for (const auto& bar : bars) {
    std::printf("  %-16s swing %6.3f min/yr   (%.3f .. %.3f)\n",
                bar.parameter.c_str(), bar.swing(), bar.metric_at_lo,
                bar.metric_at_hi);
  }
  std::cout << "\nReading: once the cluster is 4x4, downtime is governed by\n"
               "the HADB restore path and imperfect recovery, not by the AS\n"
               "hardware SLA -- negotiate the database operations runbook\n"
               "before the hardware contract.\n";
  return 0;
}

// Discrete-event simulation of the JSAS cluster: watch the failover
// machinery work at the event level, then compare long-run statistics
// against the analytic model (the paper's Table 2 numbers).
#include <cstdio>
#include <iostream>

#include "models/jsas_system.h"
#include "models/params.h"
#include "sim/jsas_simulator.h"

int main() {
  using namespace rascal;

  const auto config = models::JsasConfig::config1();
  const auto params = models::default_parameters();

  std::cout << "Simulating " << config.name()
            << " for 500 system-years (deterministic recovery times, as "
               "measured in the lab)...\n\n";

  sim::JsasSimOptions options;
  options.duration = 100.0 * 8760.0;
  options.replications = 5;
  options.seed = 1;
  options.exponential_recoveries = false;
  const auto sim_result = sim::simulate_jsas(config, params, options);

  std::printf("component events:\n");
  std::printf("  AS instance failures : %llu (~%.0f per instance-year)\n",
              static_cast<unsigned long long>(sim_result.as_instance_failures),
              static_cast<double>(sim_result.as_instance_failures) /
                  (500.0 * 2.0));
  std::printf("  HADB node failures   : %llu\n",
              static_cast<unsigned long long>(sim_result.hadb_node_failures));
  std::printf("\nsystem-level outcomes:\n");
  std::printf("  whole-cluster AS outages : %llu\n",
              static_cast<unsigned long long>(sim_result.as_cluster_failures));
  std::printf("  HADB pair double-failures: %llu (%llu from imperfect "
              "recovery)\n",
              static_cast<unsigned long long>(sim_result.hadb_pair_failures),
              static_cast<unsigned long long>(sim_result.imperfect_recoveries));
  std::printf("  availability             : %.7f\n", sim_result.availability);
  std::printf("  yearly downtime          : %.2f min (AS %.2f, HADB %.2f)\n",
              sim_result.downtime_minutes_per_year,
              sim_result.downtime_as_minutes,
              sim_result.downtime_hadb_minutes);
  std::printf("  MTBF                     : %.0f hours\n",
              sim_result.mtbf_hours);

  const auto analytic = models::solve_jsas(config, params);
  std::printf("\nanalytic model (Table 2)   : %.2f min/yr downtime, MTBF "
              "%.0f hours\n",
              analytic.downtime_minutes_per_year, analytic.mtbf_hours);
  std::cout << "\nNote: single runs of rare-event systems are noisy; "
               "bench_sim_vs_model runs 2,000 system-years with confidence "
               "intervals.\n";
  return 0;
}

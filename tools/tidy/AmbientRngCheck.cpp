#include "AmbientRngCheck.h"

#include "PathFilter.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace rascal_tidy {

AmbientRngCheck::AmbientRngCheck(llvm::StringRef Name,
                                 clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedPaths(Options.get("AllowedPaths", "src/stats/").str()) {}

bool AmbientRngCheck::isLanguageVersionSupported(
    const clang::LangOptions &LangOpts) const {
  return LangOpts.CPlusPlus;
}

void AmbientRngCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPaths", AllowedPaths);
}

void AmbientRngCheck::registerMatchers(MatchFinder *Finder) {
  // The standard engine class templates; every named engine typedef
  // (std::mt19937, std::minstd_rand, ...) desugars to one of these.
  const auto EngineDecl = cxxRecordDecl(hasAnyName(
      "::std::mersenne_twister_engine", "::std::linear_congruential_engine",
      "::std::subtract_with_carry_engine", "::std::discard_block_engine",
      "::std::shuffle_order_engine", "::std::independent_bits_engine"));
  const auto EngineType = hasType(clang::ast_matchers::qualType(
      hasUnqualifiedDesugaredType(recordType(hasDeclaration(EngineDecl)))));

  // Nondeterministic seed sources: wall-clock reads and
  // std::random_device draws, directly or anywhere inside a seed
  // argument expression (e.g. static_cast<unsigned>(time(nullptr))).
  const auto TimeCall = callExpr(callee(clang::ast_matchers::namedDecl(
      hasAnyName("::time", "::clock", "::gettimeofday", "::clock_gettime",
                 "::std::chrono::system_clock::now",
                 "::std::chrono::steady_clock::now",
                 "::std::chrono::high_resolution_clock::now"))));
  const auto RandomDeviceCall = callExpr(
      callee(cxxMethodDecl(ofClass(hasName("::std::random_device")))));
  const auto SeedSource = clang::ast_matchers::expr(
      anyOf(TimeCall, RandomDeviceCall,
            hasDescendant(
                clang::ast_matchers::expr(anyOf(TimeCall, RandomDeviceCall)))));

  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::rand", "::srand", "::random", "::srandom",
                              "::drand48", "::lrand48", "::mrand48",
                              "::rand_r", "::erand48", "::nrand48"))))
          .bind("crand"),
      this);
  Finder->addMatcher(
      cxxConstructExpr(
          hasType(clang::ast_matchers::qualType(hasUnqualifiedDesugaredType(
              recordType(hasDeclaration(cxxRecordDecl(
                  hasName("::std::random_device"))))))))
          .bind("rdev"),
      this);
  // Time/entropy-seeded engines are banned everywhere, including the
  // allowed paths: even the blessed wrapper must seed from an
  // explicit value so a run is reproducible from its seed.
  Finder->addMatcher(
      cxxConstructExpr(EngineType, hasAnyArgument(SeedSource))
          .bind("timeseed"),
      this);
  Finder->addMatcher(
      cxxConstructExpr(EngineType, unless(hasAnyArgument(SeedSource)))
          .bind("engine"),
      this);
}

void AmbientRngCheck::check(const MatchFinder::MatchResult &Result) {
  const clang::SourceManager &SM = *Result.SourceManager;

  if (const auto *Call =
          Result.Nodes.getNodeAs<clang::CallExpr>("crand")) {
    const clang::FunctionDecl *FD = Call->getDirectCallee();
    diag(Call->getExprLoc(),
         "ambient C random source '%0' bypasses the deterministic "
         "stats::RandomEngine::split substream contract; draw from a "
         "RandomEngine substream instead")
        << (FD != nullptr ? FD->getNameAsString() : std::string("rand"));
    return;
  }

  if (const auto *Ctor =
          Result.Nodes.getNodeAs<clang::CXXConstructExpr>("rdev")) {
    diag(Ctor->getExprLoc(),
         "std::random_device is nondeterministic; all randomness must "
         "derive from stats::RandomEngine::split so runs are "
         "reproducible from one seed");
    return;
  }

  if (const auto *Ctor =
          Result.Nodes.getNodeAs<clang::CXXConstructExpr>("timeseed")) {
    diag(Ctor->getExprLoc(),
         "random engine seeded from a nondeterministic source (wall "
         "clock / std::random_device); seeds must be explicit values "
         "derived via stats::RandomEngine::split");
    return;
  }

  if (const auto *Ctor =
          Result.Nodes.getNodeAs<clang::CXXConstructExpr>("engine")) {
    if (pathIsUnder(fileOf(SM, Ctor->getExprLoc()), AllowedPaths)) return;
    diag(Ctor->getExprLoc(),
         "raw <random> engine constructed outside the RNG module "
         "(allowed under: %0); use stats::RandomEngine::split "
         "substreams so parallel runs stay bit-identical")
        << AllowedPaths;
  }
}

}  // namespace rascal_tidy

#include "UnorderedIterationCheck.h"

#include "PathFilter.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace rascal_tidy {

namespace {

// "std::unordered_map", stripped of template arguments, for the
// diagnostic text.
std::string containerName(clang::QualType T) {
  if (const clang::CXXRecordDecl *RD =
          T.getCanonicalType()->getAsCXXRecordDecl()) {
    return RD->getQualifiedNameAsString();
  }
  return "unordered container";
}

}  // namespace

UnorderedIterationCheck::UnorderedIterationCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedPaths(Options.get("AllowedPaths", "").str()) {}

bool UnorderedIterationCheck::isLanguageVersionSupported(
    const clang::LangOptions &LangOpts) const {
  return LangOpts.CPlusPlus;
}

void UnorderedIterationCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPaths", AllowedPaths);
}

void UnorderedIterationCheck::registerMatchers(MatchFinder *Finder) {
  const auto UnorderedDecl = cxxRecordDecl(
      hasAnyName("::std::unordered_map", "::std::unordered_set",
                 "::std::unordered_multimap", "::std::unordered_multiset"));
  const auto UnorderedType = clang::ast_matchers::qualType(
      hasUnqualifiedDesugaredType(recordType(hasDeclaration(UnorderedDecl))));

  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(
              clang::ast_matchers::expr(hasType(UnorderedType)).bind("range")))
          .bind("loop"),
      this);
  // Explicit iterator loops and algorithm calls: m.begin(), m.cbegin()
  // and friends.  The implicit begin() a range-for desugars into is
  // excluded (it sits in the compiler-generated '__begin' variable),
  // so each loop is reported exactly once.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("begin", "cbegin", "rbegin", "crbegin"))),
          on(clang::ast_matchers::expr(
                 anyOf(hasType(UnorderedType),
                       hasType(pointsTo(UnorderedDecl))))
                 .bind("obj")),
          unless(hasAncestor(varDecl(matchesName("__begin")))))
          .bind("begincall"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::std::begin", "::std::cbegin",
                                              "::std::rbegin",
                                              "::std::crbegin"))),
               hasArgument(0, clang::ast_matchers::expr(hasType(UnorderedType))
                                  .bind("freearg")))
          .bind("freebegin"),
      this);
}

void UnorderedIterationCheck::check(const MatchFinder::MatchResult &Result) {
  const clang::SourceManager &SM = *Result.SourceManager;
  clang::SourceLocation Loc;
  clang::QualType ContainerType;

  if (const auto *Loop =
          Result.Nodes.getNodeAs<clang::CXXForRangeStmt>("loop")) {
    const auto *Range = Result.Nodes.getNodeAs<clang::Expr>("range");
    Loc = Loop->getForLoc();
    ContainerType = Range->getType();
  } else if (const auto *Call = Result.Nodes.getNodeAs<clang::CXXMemberCallExpr>(
                 "begincall")) {
    const auto *Obj = Result.Nodes.getNodeAs<clang::Expr>("obj");
    Loc = Call->getExprLoc();
    ContainerType = Obj->getType();
    if (ContainerType->isPointerType())
      ContainerType = ContainerType->getPointeeType();
  } else if (const auto *Free =
                 Result.Nodes.getNodeAs<clang::CallExpr>("freebegin")) {
    const auto *Arg = Result.Nodes.getNodeAs<clang::Expr>("freearg");
    Loc = Free->getExprLoc();
    ContainerType = Arg->getType();
  } else {
    return;
  }

  if (pathIsUnder(fileOf(SM, Loc), AllowedPaths)) return;
  diag(Loc,
       "iteration over '%0' has unspecified order and can leak into "
       "results, breaking thread-count bit-identity; iterate a sorted "
       "snapshot, or annotate with NOLINT(rascal-unordered-iteration) "
       "plus a one-line justification if order provably never escapes")
      << containerName(ContainerType);
}

}  // namespace rascal_tidy

// rascal-wall-clock: a wall-clock read inside solver/simulator code
// is a hidden input — it poisons checkpoint digests (resume would
// diverge from the uninterrupted run) and breaks bit-identity
// between hosts.  Engine code must take time from its inputs;
// telemetry and deadline code read clocks only inside the
// AllowedPaths modules (default src/resil/, src/obs/, bench/),
// which own the obs::wall_now_ns() / resil::steady_now_ns()
// funnels everything else is expected to call.
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace rascal_tidy {

class WallClockCheck : public clang::tidy::ClangTidyCheck {
 public:
  WallClockCheck(llvm::StringRef Name,
                 clang::tidy::ClangTidyContext *Context);
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override;
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

 private:
  std::string AllowedPaths;
};

}  // namespace rascal_tidy

// Registration of the rascal- check group as a clang-tidy plugin
// module.  Build with -DRASCAL_BUILD_TIDY_PLUGIN=ON and load with
//   clang-tidy --load libRascalTidyModule.so --checks='-*,rascal-*' ...
// See docs/static_analysis.md for the catalogue of checks and the CI
// gate that runs them over src/ and tools/.
#include "AmbientRngCheck.h"
#include "SignalHandlerSafetyCheck.h"
#include "SpanRaiiCheck.h"
#include "UnorderedIterationCheck.h"
#include "WallClockCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace rascal_tidy {

class RascalTidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<AmbientRngCheck>("rascal-ambient-rng");
    CheckFactories.registerCheck<UnorderedIterationCheck>(
        "rascal-unordered-iteration");
    CheckFactories.registerCheck<WallClockCheck>("rascal-wall-clock");
    CheckFactories.registerCheck<SpanRaiiCheck>("rascal-span-raii");
    CheckFactories.registerCheck<SignalHandlerSafetyCheck>(
        "rascal-signal-handler-safety");
  }
};

}  // namespace rascal_tidy

namespace clang::tidy {

// Static registration hooks the module into the host clang-tidy's
// registry when the shared object is dlopen'ed via --load.
static ClangTidyModuleRegistry::Add<::rascal_tidy::RascalTidyModule>
    RascalTidyModuleRegistration(
        "rascal-module",
        "Determinism & resilience contract checks for rascal.");

}  // namespace clang::tidy

// Anchor so a static linker keeps this object file if the module is
// ever linked into a tool instead of loaded dynamically.
volatile int RascalTidyModuleAnchorSource = 0;

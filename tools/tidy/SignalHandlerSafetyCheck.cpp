#include "SignalHandlerSafetyCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/Builtins.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace rascal_tidy {

namespace {

// POSIX.1-2017 async-signal-safe core, trimmed to what engine code
// could plausibly reach.  Names are matched with and without a
// leading "std::" (the <csignal>/<cstdlib> wrappers).
const char *const kAsyncSafe[] = {
    "abort",       "_exit",         "_Exit",        "quick_exit",
    "signal",      "sigaction",     "raise",        "kill",
    "sigemptyset", "sigfillset",    "sigaddset",    "sigdelset",
    "sigismember", "sigprocmask",   "pthread_sigmask",
    "write",       "read",          "open",         "close",
    "dup",         "dup2",          "fsync",        "fdatasync",
    "fstat",       "lseek",         "getpid",       "gettid",
    "time",        "clock_gettime", "memcpy",       "memmove",
    "memset",      "strlen",
};

bool isAtomicClass(llvm::StringRef QualifiedName) {
  // libstdc++ dispatches std::atomic<T> member functions to internal
  // bases (__atomic_base, __atomic_float, ...); libc++ keeps them on
  // std::atomic / __atomic_base.  All spellings denote the same
  // lock-free-capable primitive.
  return QualifiedName == "std::atomic" ||
         QualifiedName == "std::atomic_flag" ||
         QualifiedName == "std::atomic_ref" ||
         QualifiedName.starts_with("std::__atomic");
}

}  // namespace

SignalHandlerSafetyCheck::SignalHandlerSafetyCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFunctions(Options.get("AllowedFunctions", "").str()) {
  for (const char *Fn : kAsyncSafe) AllowedSet.insert(Fn);
  llvm::SmallVector<llvm::StringRef, 8> Extra;
  llvm::StringRef(AllowedFunctions)
      .split(Extra, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef Fn : Extra) {
    Fn = Fn.trim();
    if (!Fn.empty()) AllowedSet.insert(Fn);
  }
}

bool SignalHandlerSafetyCheck::isLanguageVersionSupported(
    const clang::LangOptions &LangOpts) const {
  return LangOpts.CPlusPlus;
}

void SignalHandlerSafetyCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFunctions", AllowedFunctions);
}

void SignalHandlerSafetyCheck::registerMatchers(MatchFinder *Finder) {
  // <csignal> declares std::signal as `using ::signal`, so matching
  // the global name covers both spellings.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::signal", "::std::signal"))),
               argumentCountIs(2))
          .bind("register"),
      this);
}

void SignalHandlerSafetyCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Reg = Result.Nodes.getNodeAs<clang::CallExpr>("register");
  if (Reg == nullptr) return;

  const clang::Expr *Arg = Reg->getArg(1)->IgnoreParenImpCasts();
  if (const auto *UO = llvm::dyn_cast<clang::UnaryOperator>(Arg)) {
    if (UO->getOpcode() == clang::UO_AddrOf)
      Arg = UO->getSubExpr()->IgnoreParenImpCasts();
  }
  const auto *Ref = llvm::dyn_cast<clang::DeclRefExpr>(Arg);
  if (Ref == nullptr) return;  // SIG_DFL / SIG_IGN / computed handler
  const auto *Handler = llvm::dyn_cast<clang::FunctionDecl>(Ref->getDecl());
  if (Handler == nullptr) return;

  const clang::FunctionDecl *Def = nullptr;
  if (!Handler->hasBody(Def)) return;  // body in another TU

  llvm::SmallPtrSet<const clang::FunctionDecl *, 16> Seen;
  walkFunction(Def, Def, Reg->getExprLoc(), Seen, *Result.SourceManager);
}

void SignalHandlerSafetyCheck::walkFunction(
    const clang::FunctionDecl *Fn, const clang::FunctionDecl *Handler,
    clang::SourceLocation RegisterLoc,
    llvm::SmallPtrSetImpl<const clang::FunctionDecl *> &Seen,
    const clang::SourceManager &SM) {
  if (Fn == nullptr || !Seen.insert(Fn).second) return;
  visitStmt(Fn->getBody(), Handler, RegisterLoc, Seen, SM);
}

void SignalHandlerSafetyCheck::visitStmt(
    const clang::Stmt *S, const clang::FunctionDecl *Handler,
    clang::SourceLocation RegisterLoc,
    llvm::SmallPtrSetImpl<const clang::FunctionDecl *> &Seen,
    const clang::SourceManager &SM) {
  if (S == nullptr) return;

  if (llvm::isa<clang::CXXThrowExpr>(S)) {
    diag(S->getBeginLoc(),
         "'throw' is reachable from signal handler %0; handlers may "
         "only touch lock-free atomics and async-signal-safe calls")
        << Handler->getNameAsString();
    diag(RegisterLoc, "handler registered here",
         clang::DiagnosticIDs::Note);
  } else if (llvm::isa<clang::CXXNewExpr>(S) ||
             llvm::isa<clang::CXXDeleteExpr>(S)) {
    diag(S->getBeginLoc(),
         "heap allocation is reachable from signal handler %0; the "
         "allocator takes locks and is not async-signal-safe")
        << Handler->getNameAsString();
    diag(RegisterLoc, "handler registered here",
         clang::DiagnosticIDs::Note);
  } else if (const auto *Ctor = llvm::dyn_cast<clang::CXXConstructExpr>(S)) {
    const clang::CXXConstructorDecl *CD = Ctor->getConstructor();
    if (CD != nullptr && !CD->isTrivial() && !CD->isDefaulted())
      classifyCall(CD, Ctor->getBeginLoc(), Handler, RegisterLoc, Seen, SM);
  } else if (const auto *Call = llvm::dyn_cast<clang::CallExpr>(S)) {
    const clang::FunctionDecl *Callee = Call->getDirectCallee();
    if (Callee == nullptr) {
      diag(Call->getExprLoc(),
           "indirect call reachable from signal handler %0 cannot be "
           "proven async-signal-safe")
          << Handler->getNameAsString();
      diag(RegisterLoc, "handler registered here",
           clang::DiagnosticIDs::Note);
    } else {
      classifyCall(Callee, Call->getExprLoc(), Handler, RegisterLoc, Seen,
                   SM);
    }
  }

  for (const clang::Stmt *Child : S->children())
    visitStmt(Child, Handler, RegisterLoc, Seen, SM);
}

void SignalHandlerSafetyCheck::classifyCall(
    const clang::FunctionDecl *Callee, clang::SourceLocation CallLoc,
    const clang::FunctionDecl *Handler, clang::SourceLocation RegisterLoc,
    llvm::SmallPtrSetImpl<const clang::FunctionDecl *> &Seen,
    const clang::SourceManager &SM) {
  // Lock-free atomic operations are the one blessed mutation channel.
  if (const auto *MD = llvm::dyn_cast<clang::CXXMethodDecl>(Callee)) {
    const clang::CXXRecordDecl *RD = MD->getParent();
    if (RD != nullptr && isAtomicClass(RD->getQualifiedNameAsString())) {
      if (const auto *Spec =
              llvm::dyn_cast<clang::ClassTemplateSpecializationDecl>(RD)) {
        if (Spec->getTemplateArgs().size() >= 1) {
          const clang::TemplateArgument &TA = Spec->getTemplateArgs()[0];
          if (TA.getKind() == clang::TemplateArgument::Type &&
              !TA.getAsType()->isScalarType()) {
            diag(CallLoc,
                 "std::atomic over a class type may be lock-based; a "
                 "signal handler (here: %0) may only touch lock-free "
                 "atomics over scalar types")
                << Handler->getNameAsString();
            diag(RegisterLoc, "handler registered here",
                 clang::DiagnosticIDs::Note);
          }
        }
      }
      return;
    }
  }

  std::string Qualified = Callee->getQualifiedNameAsString();
  llvm::StringRef Name(Qualified);
  Name.consume_front("std::");
  if (AllowedSet.contains(Name) || AllowedSet.contains(Qualified)) return;

  // Compiler intrinsics (__builtin_expect, ...) lower to inline code,
  // not calls.  Library builtins (printf, malloc, ...) also carry a
  // builtin ID but are real libc calls, so they stay subject to the
  // allowlist above.
  if (unsigned ID = Callee->getBuiltinID()) {
    if (!Callee->getASTContext().BuiltinInfo.isPredefinedLibFunction(ID))
      return;
  }

  // A callee whose body is visible in this TU (and is not a standard
  // library internal) is analyzed transitively instead of flagged —
  // this is exactly what lets the resil handler call
  // CancellationToken::request_cancel_signal.
  const clang::FunctionDecl *CalleeDef = nullptr;
  if (Callee->hasBody(CalleeDef) &&
      !SM.isInSystemHeader(CalleeDef->getLocation())) {
    walkFunction(CalleeDef, Handler, RegisterLoc, Seen, SM);
    return;
  }

  diag(CallLoc,
       "'%0' is not async-signal-safe but is reachable from signal "
       "handler %1; handlers may only touch lock-free atomics and "
       "async-signal-safe calls")
      << Qualified << Handler->getNameAsString();
  diag(RegisterLoc, "handler registered here", clang::DiagnosticIDs::Note);
}

}  // namespace rascal_tidy

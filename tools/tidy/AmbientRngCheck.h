// rascal-ambient-rng: every source of randomness in the engine must
// derive from stats::RandomEngine::split substreams (DESIGN.md,
// "Parallel execution & reproducibility").  Ambient RNGs — rand(),
// std::random_device, wall-clock-seeded engines — make runs
// irreproducible and break the bit-identical-at-any-RASCAL_THREADS
// guarantee, so they are banned outright; raw <random> engines may
// only be constructed inside the AllowedPaths set (default
// src/stats/, where RandomEngine wraps the one blessed engine).
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace rascal_tidy {

class AmbientRngCheck : public clang::tidy::ClangTidyCheck {
 public:
  AmbientRngCheck(llvm::StringRef Name,
                  clang::tidy::ClangTidyContext *Context);
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override;
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

 private:
  std::string AllowedPaths;
};

}  // namespace rascal_tidy

#!/usr/bin/env bash
# Vendors the clang-tidy framework headers (ClangTidyCheck.h and
# friends) that distro LLVM packages do not ship.  They are fetched
# from the llvm-project release tag matching the installed LLVM so
# the plugin ABI lines up with the clang-tidy binary that loads it.
#
# Usage: fetch_clang_tidy_headers.sh <dest-dir> [llvm-version]
#   dest-dir      headers land in <dest-dir>/clang-tidy/
#   llvm-version  e.g. 18.1.3; default: `llvm-config --version`
set -euo pipefail

dest="${1:?usage: fetch_clang_tidy_headers.sh <dest-dir> [llvm-version]}"
version="${2:-}"

if [[ -z "${version}" ]]; then
  for cfg in llvm-config llvm-config-19 llvm-config-18 llvm-config-17 \
             llvm-config-16 llvm-config-15 llvm-config-14; do
    if command -v "${cfg}" >/dev/null 2>&1; then
      version="$("${cfg}" --version)"
      break
    fi
  done
fi
if [[ -z "${version}" ]]; then
  echo "error: no llvm-config found; pass the LLVM version explicitly" >&2
  exit 1
fi
# llvm-config may report suffixed versions like 18.1.3rc2.
version="${version%%rc*}"

tag="llvmorg-${version}"
base="https://raw.githubusercontent.com/llvm/llvm-project/${tag}/clang-tools-extra/clang-tidy"
out="${dest}/clang-tidy"
mkdir -p "${out}/utils"

# The transitive include closure of ClangTidyCheck.h as of LLVM 15-19.
headers=(
  ClangTidy.h
  ClangTidyCheck.h
  ClangTidyDiagnosticConsumer.h
  ClangTidyModule.h
  ClangTidyModuleRegistry.h
  ClangTidyOptions.h
  ClangTidyProfiling.h
  FileExtensionsSet.h
  NoLintDirectiveHandler.h
  GlobList.h
)

fetch() {
  local rel="$1"
  local url="${base}/${rel}"
  local target="${out}/${rel}"
  if command -v curl >/dev/null 2>&1; then
    curl -fsSL --retry 3 -o "${target}" "${url}"
  else
    wget -q -O "${target}" "${url}"
  fi
}

for h in "${headers[@]}"; do
  echo "fetching ${h} @ ${tag}"
  # FileExtensionsSet.h only exists from LLVM 16; tolerate 404s on
  # headers that a given release does not have.
  if ! fetch "${h}"; then
    echo "  (not present in ${tag}; skipping)"
    rm -f "${out}/${h}"
  fi
done

echo "clang-tidy headers for LLVM ${version} vendored under ${out}"

// rascal-unordered-iteration: iteration order of unordered
// associative containers depends on hash seeding, insertion history
// and load factor, so any loop over one can leak an unspecified
// order into results and break the bit-identical-at-any-thread-count
// contract (DESIGN.md).  The check flags range-for loops and
// begin()/cbegin()-family iteration over std::unordered_{map,set,
// multimap,multiset}.  Keyed operations (find, count, insert, erase
// by key) are untouched.  Known-safe sites — where the iteration
// result provably never reaches output, e.g. membership sets that
// are only probed — carry a NOLINT(rascal-unordered-iteration)
// annotation with a one-line justification.
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace rascal_tidy {

class UnorderedIterationCheck : public clang::tidy::ClangTidyCheck {
 public:
  UnorderedIterationCheck(llvm::StringRef Name,
                          clang::tidy::ClangTidyContext *Context);
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override;
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

 private:
  std::string AllowedPaths;
};

}  // namespace rascal_tidy

#!/usr/bin/env python3
"""Fixture harness for the rascal-tidy plugin.

Runs `clang-tidy --load <plugin>` over one fixture and compares the
emitted rascal-* warnings against the fixture's inline annotations:

  // RASCAL-CHECKS: rascal-ambient-rng         (required; comma/space list)
  // RASCAL-PATH: src/stats/fixture.cpp        (optional; the fixture is
  //                                            copied to this path under a
  //                                            temp dir so AllowedPaths
  //                                            filtering sees it there)
  // CHECK-MESSAGES: [[@LINE-1]] rascal-foo: substring of the message
  // CHECK-MESSAGES-NONE                       (fixture must be clean)

Matching is deliberately lenient — line + check name + message
substring, no columns — so fixtures survive small wording tweaks.
Every annotation must be matched by a warning and every rascal-*
warning on the fixture file must be matched by an annotation.
"""

import argparse
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

ANNOT_RE = re.compile(
    r"//\s*CHECK-MESSAGES:\s*\[\[@LINE(?P<off>[+-]\d+)?\]\]\s*"
    r"(?P<check>rascal-[a-z-]+):\s*(?P<substr>.*\S)"
)
NONE_RE = re.compile(r"//\s*CHECK-MESSAGES-NONE\b")
CHECKS_RE = re.compile(r"//\s*RASCAL-CHECKS:\s*(?P<checks>[\w, -]+\S)")
PATH_RE = re.compile(r"//\s*RASCAL-PATH:\s*(?P<path>\S+)")
# WarningsAsErrors promotes findings to 'error: ... [check,-warnings-
# as-errors]'; accept both renderings so the harness works under any
# surrounding .clang-tidy config.
DIAG_RE = re.compile(
    r"^(?P<file>.+?):(?P<line>\d+):\d+:\s+(?:warning|error):\s+"
    r"(?P<msg>.*?)\s+\[(?P<check>[\w.-]+)(?:,-warnings-as-errors)?\]\s*$"
)


def parse_fixture(text):
    expected = []  # list of (line, check, substring)
    checks = None
    relpath = None
    expect_none = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ANNOT_RE.search(line)
        if m:
            off = int(m.group("off") or 0)
            expected.append((lineno + off, m.group("check"),
                             m.group("substr").strip()))
            continue
        if NONE_RE.search(line):
            expect_none = True
            continue
        m = CHECKS_RE.search(line)
        if m:
            checks = re.split(r"[,\s]+", m.group("checks").strip())
            checks = [c for c in checks if c]
            continue
        m = PATH_RE.search(line)
        if m:
            relpath = m.group("path")
    return checks, relpath, expected, expect_none


def run_clang_tidy(clang_tidy, plugin, checks, target, extra_args):
    cmd = [
        clang_tidy,
        f"--load={plugin}",
        "--checks=-*," + ",".join(checks),
        str(target),
        "--",
    ] + extra_args
    return subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)


def collect_diags(stdout, target):
    target = pathlib.Path(target).resolve()
    diags = []
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if m is None:
            continue
        try:
            diag_file = pathlib.Path(m.group("file")).resolve()
        except OSError:
            continue
        if diag_file != target:
            continue
        if not m.group("check").startswith("rascal-"):
            continue
        diags.append((int(m.group("line")), m.group("check"),
                      m.group("msg")))
    return diags


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--clang-tidy", required=True)
    ap.add_argument("--plugin", required=True)
    ap.add_argument("--fixture", required=True)
    ap.add_argument("--std", default="c++17")
    args = ap.parse_args()

    fixture = pathlib.Path(args.fixture)
    text = fixture.read_text()
    checks, relpath, expected, expect_none = parse_fixture(text)

    if not checks:
        print(f"FAIL: {fixture}: missing '// RASCAL-CHECKS:' header")
        return 2
    if expect_none and expected:
        print(f"FAIL: {fixture}: CHECK-MESSAGES-NONE conflicts with "
              "CHECK-MESSAGES annotations")
        return 2
    if not expect_none and not expected:
        print(f"FAIL: {fixture}: no CHECK-MESSAGES annotations and no "
              "CHECK-MESSAGES-NONE marker")
        return 2

    with tempfile.TemporaryDirectory(prefix="rascal-tidy-") as tmp:
        target = pathlib.Path(tmp) / (relpath or fixture.name)
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(fixture, target)

        proc = run_clang_tidy(
            args.clang_tidy, args.plugin, checks, target,
            [f"-std={args.std}", "-w"])
        diags = collect_diags(proc.stdout, target)
        # clang-tidy exits nonzero when findings are promoted to
        # errors (fine, we compare them below) and when it could not
        # parse the file or load the plugin (a harness failure —
        # distinguished by the absence of rascal diagnostics).
        if proc.returncode != 0 and not diags:
            print(f"FAIL: {fixture}: clang-tidy failed "
                  f"(rc={proc.returncode})")
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            return 2

    failures = []
    unmatched = list(diags)
    for line, check, substr in expected:
        hit = None
        for d in unmatched:
            if d[0] == line and d[1] == check and substr in d[2]:
                hit = d
                break
        if hit is None:
            failures.append(
                f"expected [{check}] at line {line} containing "
                f"'{substr}' — not emitted")
        else:
            unmatched.remove(hit)
    for line, check, msg in unmatched:
        failures.append(
            f"unexpected [{check}] at line {line}: {msg}")

    if failures:
        print(f"FAIL: {fixture.name}: {len(failures)} mismatch(es)")
        for f in failures:
            print(f"  {f}")
        print("--- full clang-tidy output ---")
        sys.stdout.write(proc.stdout)
        return 1

    kind = "clean" if expect_none else f"{len(expected)} finding(s)"
    print(f"PASS: {fixture.name} ({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

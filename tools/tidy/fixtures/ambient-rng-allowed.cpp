// Negative fixture: the harness places this file under src/stats/
// (the AllowedPaths default), where explicitly-seeded engine
// construction is the blessed implementation detail of
// stats::RandomEngine.  Zero findings expected.
// RASCAL-CHECKS: rascal-ambient-rng
// RASCAL-PATH: src/stats/engine_fixture.cpp
// CHECK-MESSAGES-NONE
#include <cstdint>
#include <random>

std::uint64_t blessed_engine(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  return gen();
}

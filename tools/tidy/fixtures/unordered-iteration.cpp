// Positive fixture: every iteration form over unordered containers.
// RASCAL-CHECKS: rascal-unordered-iteration
#include <iterator>
#include <unordered_map>
#include <unordered_set>

int bad_range_for(const std::unordered_map<int, int> &m) {
  int total = 0;
  for (const auto &kv : m) total += kv.second;
  // CHECK-MESSAGES: [[@LINE-1]] rascal-unordered-iteration: iteration over 'std::unordered_map'
  return total;
}

int bad_iterator_loop(const std::unordered_set<int> &s) {
  auto it = s.cbegin();
  // CHECK-MESSAGES: [[@LINE-1]] rascal-unordered-iteration: iteration over 'std::unordered_set'
  return (it == s.cend()) ? 0 : *it;
}

int bad_begin_via_pointer(const std::unordered_multiset<int> *s) {
  auto it = s->begin();
  // CHECK-MESSAGES: [[@LINE-1]] rascal-unordered-iteration: iteration over 'std::unordered_multiset'
  return *it;
}

auto bad_free_begin(const std::unordered_map<int, int> &m) {
  return std::begin(m);
  // CHECK-MESSAGES: [[@LINE-1]] rascal-unordered-iteration: iteration over 'std::unordered_map'
}

// Negative fixture: the harness places this file under src/obs/,
// where clock reads are the telemetry funnel's job.  Zero findings
// expected.
// RASCAL-CHECKS: rascal-wall-clock
// RASCAL-PATH: src/obs/telemetry_fixture.cpp
// CHECK-MESSAGES-NONE
#include <chrono>

long long telemetry_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

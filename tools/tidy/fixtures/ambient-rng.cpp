// Positive fixture: every ambient randomness source the check bans.
// This file is compiled from a path OUTSIDE src/stats/, so raw engine
// construction is also a finding.
// RASCAL-CHECKS: rascal-ambient-rng
#include <cstdlib>
#include <ctime>
#include <random>

int bad_c_rand() {
  return rand();
  // CHECK-MESSAGES: [[@LINE-1]] rascal-ambient-rng: ambient C random source 'rand'
}

void bad_c_srand() {
  srand(42);
  // CHECK-MESSAGES: [[@LINE-1]] rascal-ambient-rng: ambient C random source 'srand'
}

double bad_drand48() {
  return drand48();
  // CHECK-MESSAGES: [[@LINE-1]] rascal-ambient-rng: ambient C random source 'drand48'
}

unsigned bad_random_device() {
  std::random_device rd;
  // CHECK-MESSAGES: [[@LINE-1]] rascal-ambient-rng: std::random_device is nondeterministic
  return rd();
}

unsigned bad_time_seeded_engine() {
  std::mt19937 gen(static_cast<unsigned>(time(nullptr)));
  // CHECK-MESSAGES: [[@LINE-1]] rascal-ambient-rng: seeded from a nondeterministic source
  return gen();
}

unsigned bad_engine_outside_rng_module() {
  std::mt19937_64 gen(12345u);
  // CHECK-MESSAGES: [[@LINE-1]] rascal-ambient-rng: raw <random> engine constructed outside
  return static_cast<unsigned>(gen());
}

int bad_engine_typedef() {
  std::minstd_rand gen(7u);
  // CHECK-MESSAGES: [[@LINE-1]] rascal-ambient-rng: raw <random> engine constructed outside
  return static_cast<int>(gen());
}

// Negative fixture: the NOLINT allowlist mechanism.  Membership
// queries are fine without annotation; order-insensitive reductions
// are fine WITH a justified NOLINT.  Zero findings expected.
// RASCAL-CHECKS: rascal-unordered-iteration
// CHECK-MESSAGES-NONE
#include <unordered_map>
#include <unordered_set>

bool membership_is_fine(const std::unordered_set<int> &s, int key) {
  return s.count(key) != 0;  // no iteration, no finding
}

long allowlisted_reduction(const std::unordered_map<int, long> &m) {
  long total = 0;
  // Commutative sum: iteration order provably never escapes.
  for (const auto &kv : m)  // NOLINT(rascal-unordered-iteration)
    total += kv.second;
  return total;
}

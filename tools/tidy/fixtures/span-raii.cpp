// rascal-span-raii fixture: unnamed Span temporaries die at the end
// of the statement and time nothing; named spans and spans passed as
// arguments are fine.  Mirrors the signature of rascal::obs::Span.
// RASCAL-CHECKS: rascal-span-raii
namespace rascal {
namespace obs {
struct Span {
  explicit Span(const char *name);
  ~Span();
};
}  // namespace obs
}  // namespace rascal

void solve();
void consume_span(rascal::obs::Span &&span);

void bad_discarded_temporary() {
  rascal::obs::Span("solve");
  // CHECK-MESSAGES: [[@LINE-1]] rascal-span-raii: obs::Span temporary is destroyed
  solve();
}

void bad_temporary_in_if(bool verbose) {
  if (verbose)
    rascal::obs::Span("verbose-solve");
  // CHECK-MESSAGES: [[@LINE-1]] rascal-span-raii: obs::Span temporary is destroyed
  solve();
}

void good_named_span() {
  rascal::obs::Span span("solve");
  solve();
}

void good_span_as_argument() {
  consume_span(rascal::obs::Span("handoff"));
}

// Positive fixture: wall-clock reads from engine code (this file is
// outside the src/resil/;src/obs/;bench/ allowlist).
// RASCAL-CHECKS: rascal-wall-clock
#include <chrono>
#include <ctime>

long long bad_steady_clock() {
  auto t0 = std::chrono::steady_clock::now();
  // CHECK-MESSAGES: [[@LINE-1]] rascal-wall-clock: wall-clock read ('std::chrono::steady_clock::now')
  return t0.time_since_epoch().count();
}

long long bad_system_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
  // CHECK-MESSAGES: [[@LINE-1]] rascal-wall-clock: wall-clock read ('std::chrono::system_clock::now')
}

long bad_c_time() {
  return static_cast<long>(time(nullptr));
  // CHECK-MESSAGES: [[@LINE-1]] rascal-wall-clock: wall-clock read ('time')
}

long bad_clock_gettime() {
  timespec ts{};
  clock_gettime(0, &ts);
  // CHECK-MESSAGES: [[@LINE-1]] rascal-wall-clock: wall-clock read ('clock_gettime')
  return ts.tv_sec;
}

// rascal-signal-handler-safety fixture.  good_handler mirrors the
// real resil handler: it funnels through a helper that only touches
// lock-free atomics and async-signal-safe calls, which the transitive
// walk must accept.  The bad handlers exercise each flagged category.
// RASCAL-CHECKS: rascal-signal-handler-safety
#include <atomic>
#include <csignal>
#include <cstdio>
#include <unistd.h>

namespace {

std::atomic<int> g_last_signal{0};

void record_request(int signum) {
  g_last_signal.store(signum, std::memory_order_relaxed);
}

void good_handler(int signum) {
  record_request(signum);
  write(2, "sig\n", 4);
}

void bad_stdio_handler(int signum) {
  std::printf("caught %d\n", signum);
  // CHECK-MESSAGES: [[@LINE-1]] rascal-signal-handler-safety: 'printf' is not async-signal-safe
  record_request(signum);
}

void bad_throwing_handler(int signum) {
  if (signum != 0) throw signum;
  // CHECK-MESSAGES: [[@LINE-1]] rascal-signal-handler-safety: 'throw' is reachable
}

void bad_alloc_handler(int signum) {
  int *slot = new int(signum);
  // CHECK-MESSAGES: [[@LINE-1]] rascal-signal-handler-safety: heap allocation is reachable
  delete slot;
  // CHECK-MESSAGES: [[@LINE-1]] rascal-signal-handler-safety: heap allocation is reachable
}

}  // namespace

void install_good() { std::signal(SIGTERM, good_handler); }
void install_bad_stdio() { std::signal(SIGINT, bad_stdio_handler); }
void install_bad_throw() { std::signal(SIGINT, bad_throwing_handler); }
void install_bad_alloc() { std::signal(SIGINT, bad_alloc_handler); }

// Shared helper for the rascal- check group: several contracts are
// scoped by directory ("all randomness lives in src/stats/", "wall
// clocks live in src/resil/ and src/obs/").  Checks express that
// scope as a semicolon-separated list of repo-relative path prefixes
// in their AllowedPaths option, and this helper decides whether a
// diagnostic location falls inside the allowed set.  Matching is by
// path component, so it works for both relative invocations
// ("src/stats/rng.cpp") and the absolute paths a compile_commands
// database produces ("/home/u/repo/src/stats/rng.cpp").
#pragma once

#include <algorithm>
#include <string>

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace rascal_tidy {

inline bool pathIsUnder(llvm::StringRef Path, llvm::StringRef Prefixes) {
  if (Path.empty() || Prefixes.empty()) return false;
  std::string Norm = Path.str();
  std::replace(Norm.begin(), Norm.end(), '\\', '/');
  llvm::StringRef P(Norm);
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Prefixes.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef Prefix : Parts) {
    Prefix = Prefix.trim();
    if (Prefix.empty()) continue;
    if (P.starts_with(Prefix)) return true;
    const std::string Anchored = "/" + Prefix.str();
    if (P.contains(Anchored)) return true;
  }
  return false;
}

/// File a diagnostic location belongs to, macro expansions resolved
/// to their expansion site (the contract cares where code runs from,
/// not where a macro was defined).
inline llvm::StringRef fileOf(const clang::SourceManager &SM,
                              clang::SourceLocation Loc) {
  return SM.getFilename(SM.getExpansionLoc(Loc));
}

}  // namespace rascal_tidy

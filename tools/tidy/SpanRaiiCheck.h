// rascal-span-raii: obs::Span is an RAII timer — it measures the
// interval between construction and destruction.  Constructed as an
// unnamed temporary (`obs::Span("solve");`) it is destroyed at the
// end of the same full-expression and records a zero-length span,
// silently corrupting the profile.  The check flags Span temporaries
// in discarded-value statements; a named local
// (`obs::Span span("solve");`) is the fix.
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace rascal_tidy {

class SpanRaiiCheck : public clang::tidy::ClangTidyCheck {
 public:
  SpanRaiiCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext *Context);
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override;
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

 private:
  std::string SpanClass;
};

}  // namespace rascal_tidy

#include "WallClockCheck.h"

#include "PathFilter.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace rascal_tidy {

WallClockCheck::WallClockCheck(llvm::StringRef Name,
                               clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedPaths(
          Options.get("AllowedPaths", "src/resil/;src/obs/;bench/").str()) {}

bool WallClockCheck::isLanguageVersionSupported(
    const clang::LangOptions &LangOpts) const {
  return LangOpts.CPlusPlus;
}

void WallClockCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPaths", AllowedPaths);
}

void WallClockCheck::registerMatchers(MatchFinder *Finder) {
  // std::chrono clock reads.  high_resolution_clock is an alias of
  // system_clock or steady_clock in practice, so naming all three
  // catches it under every standard library.
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::steady_clock",
                                      "::std::chrono::system_clock",
                                      "::std::chrono::high_resolution_clock")))))
          .bind("now"),
      this);
  // C / POSIX clock reads.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::time", "::clock", "::gettimeofday", "::clock_gettime",
                   "::timespec_get", "::localtime", "::localtime_r",
                   "::gmtime", "::gmtime_r", "::ctime", "::ctime_r",
                   "::ftime", "::times"))))
          .bind("cclock"),
      this);
}

void WallClockCheck::check(const MatchFinder::MatchResult &Result) {
  const clang::SourceManager &SM = *Result.SourceManager;
  const clang::CallExpr *Call =
      Result.Nodes.getNodeAs<clang::CallExpr>("now");
  if (Call == nullptr) Call = Result.Nodes.getNodeAs<clang::CallExpr>("cclock");
  if (Call == nullptr) return;
  if (pathIsUnder(fileOf(SM, Call->getExprLoc()), AllowedPaths)) return;

  const clang::FunctionDecl *FD = Call->getDirectCallee();
  diag(Call->getExprLoc(),
       "wall-clock read ('%0') in engine code is a hidden input that "
       "poisons checkpoint digests and bit-identity; take time from "
       "the model, or route telemetry through obs::wall_now_ns() / "
       "resil (allowed under: %1)")
      << (FD != nullptr ? FD->getQualifiedNameAsString()
                        : std::string("clock read"))
      << AllowedPaths;
}

}  // namespace rascal_tidy

#include "SpanRaiiCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace rascal_tidy {

SpanRaiiCheck::SpanRaiiCheck(llvm::StringRef Name,
                             clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SpanClass(Options.get("SpanClass", "::rascal::obs::Span").str()) {}

bool SpanRaiiCheck::isLanguageVersionSupported(
    const clang::LangOptions &LangOpts) const {
  return LangOpts.CPlusPlus;
}

void SpanRaiiCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SpanClass", SpanClass);
}

void SpanRaiiCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxTemporaryObjectExpr(
          hasType(clang::ast_matchers::qualType(hasUnqualifiedDesugaredType(
              recordType(hasDeclaration(cxxRecordDecl(hasName(SpanClass))))))))
          .bind("temp"),
      this);
}

void SpanRaiiCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Temp =
      Result.Nodes.getNodeAs<clang::CXXTemporaryObjectExpr>("temp");
  if (Temp == nullptr) return;

  // Climb through the wrapper nodes the AST puts around a temporary
  // with a nontrivial destructor.  If the chain tops out as a
  // statement of a block (or as the unbraced body of a control
  // statement), the temporary is a discarded-value expression: the
  // span dies before the work it was meant to time even starts.
  const clang::Stmt *Cur = Temp;
  clang::ASTContext &Ctx = *Result.Context;
  while (true) {
    const auto Parents = Ctx.getParents(*Cur);
    if (Parents.empty()) return;
    const clang::Stmt *Parent = Parents[0].get<clang::Stmt>();
    // Parent is a declaration (variable initializer, member default
    // initializer, ...): the span is named and lives a scope.
    if (Parent == nullptr) return;
    if (llvm::isa<clang::CompoundStmt>(Parent) ||
        llvm::isa<clang::IfStmt>(Parent) ||
        llvm::isa<clang::ForStmt>(Parent) ||
        llvm::isa<clang::WhileStmt>(Parent) ||
        llvm::isa<clang::DoStmt>(Parent) ||
        llvm::isa<clang::CXXForRangeStmt>(Parent) ||
        llvm::isa<clang::CaseStmt>(Parent) ||
        llvm::isa<clang::DefaultStmt>(Parent) ||
        llvm::isa<clang::LabelStmt>(Parent)) {
      break;
    }
    if (llvm::isa<clang::ExprWithCleanups>(Parent) ||
        llvm::isa<clang::CXXBindTemporaryExpr>(Parent) ||
        llvm::isa<clang::ImplicitCastExpr>(Parent) ||
        llvm::isa<clang::CXXFunctionalCastExpr>(Parent) ||
        llvm::isa<clang::MaterializeTemporaryExpr>(Parent) ||
        llvm::isa<clang::ConstantExpr>(Parent) ||
        llvm::isa<clang::ParenExpr>(Parent)) {
      Cur = Parent;
      continue;
    }
    // Used as a subexpression of something real (function argument,
    // return value, ...): not the zero-length-statement pattern.
    return;
  }

  diag(Temp->getExprLoc(),
       "obs::Span temporary is destroyed at the end of this statement "
       "and records a zero-length span; name it ('obs::Span "
       "span(...);') so it covers the scope it is meant to time");
}

}  // namespace rascal_tidy

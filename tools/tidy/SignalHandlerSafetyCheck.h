// rascal-signal-handler-safety: the resil cancellation contract
// (docs/resilience.md) says the handler installed by
// resil::install_signal_handlers — and everything it reaches — may
// only touch lock-free atomics and call async-signal-safe functions.
// The stock bugprone-signal-handler check cannot express "calls into
// a function that only touches atomics are fine", so it was disabled;
// this check replaces it: it finds handler registrations
// (std::signal/::signal), walks the registered function's call graph
// through every callee whose body is visible in the translation
// unit, and flags
//   * calls to functions that are neither async-signal-safe,
//     lock-free-atomic members, nor analyzable (no visible body),
//   * throw / new / delete,
//   * std::atomic<T> operations where T is a class type (such an
//     atomic may be implemented with a lock).
// The async-signal-safe set is the POSIX core list and can be
// extended per project with the AllowedFunctions option.
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/SmallPtrSet.h"
#include "llvm/ADT/StringSet.h"

namespace rascal_tidy {

class SignalHandlerSafetyCheck : public clang::tidy::ClangTidyCheck {
 public:
  SignalHandlerSafetyCheck(llvm::StringRef Name,
                           clang::tidy::ClangTidyContext *Context);
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override;
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

 private:
  void walkFunction(const clang::FunctionDecl *Fn,
                    const clang::FunctionDecl *Handler,
                    clang::SourceLocation RegisterLoc,
                    llvm::SmallPtrSetImpl<const clang::FunctionDecl *> &Seen,
                    const clang::SourceManager &SM);
  void visitStmt(const clang::Stmt *S, const clang::FunctionDecl *Handler,
                 clang::SourceLocation RegisterLoc,
                 llvm::SmallPtrSetImpl<const clang::FunctionDecl *> &Seen,
                 const clang::SourceManager &SM);
  void classifyCall(const clang::FunctionDecl *Callee,
                    clang::SourceLocation CallLoc,
                    const clang::FunctionDecl *Handler,
                    clang::SourceLocation RegisterLoc,
                    llvm::SmallPtrSetImpl<const clang::FunctionDecl *> &Seen,
                    const clang::SourceManager &SM);

  std::string AllowedFunctions;
  llvm::StringSet<> AllowedSet;
};

}  // namespace rascal_tidy

#!/usr/bin/env python3
"""Self-test for run_fixture_test.py that needs no clang toolchain.

The container building this repo has no clang-tidy, so the plugin and
its fixtures only compile in CI.  This test keeps the harness itself
honest everywhere: it fabricates a mock clang-tidy (a python script
that emits a warning for every `EMIT(check, message)` marker in the
input file) and asserts the harness verdict for the four interesting
cases — all annotations matched, a missing diagnostic, an unexpected
diagnostic, and CHECK-MESSAGES-NONE both holding and violated.
"""

import os
import pathlib
import stat
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent

MOCK_CLANG_TIDY = r'''#!/usr/bin/env python3
import re, sys
args = sys.argv[1:]
if "--" in args:
    args = args[:args.index("--")]
target = next(a for a in args if not a.startswith("-"))
for lineno, line in enumerate(open(target), start=1):
    m = re.search(r"EMIT\(([\w-]+),\s*(.+?)\)", line)
    if m:
        print(f"{target}:{lineno}:1: warning: {m.group(2)} [{m.group(1)}]")
'''


def write_executable(path, text):
    path.write_text(text)
    path.chmod(path.stat().st_mode | stat.S_IXUSR)


def run_harness(tmp, mock, fixture_text):
    fixture = tmp / "fixture.cpp"
    fixture.write_text(fixture_text)
    proc = subprocess.run(
        [sys.executable, str(HERE / "run_fixture_test.py"),
         "--clang-tidy", str(mock), "--plugin", "/nonexistent.so",
         "--fixture", str(fixture)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc


def expect(name, proc, want_rc, want_substr=None):
    ok = proc.returncode == want_rc and (
        want_substr is None or want_substr in proc.stdout)
    print(f"{'ok' if ok else 'FAIL'}: {name}")
    if not ok:
        print(f"  want rc={want_rc}"
              + (f" containing '{want_substr}'" if want_substr else ""))
        print(f"  got rc={proc.returncode}, output:")
        for line in proc.stdout.splitlines():
            print(f"    {line}")
    return ok


def main():
    results = []
    with tempfile.TemporaryDirectory(prefix="rascal-tidy-selftest-") as d:
        tmp = pathlib.Path(d)
        mock = tmp / "mock-clang-tidy"
        write_executable(mock, MOCK_CLANG_TIDY)

        results.append(expect(
            "matched annotations pass",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "int x;  // EMIT(rascal-demo, banned construct here)\n"
                "// CHECK-MESSAGES: [[@LINE-1]] rascal-demo: banned construct\n"
            )),
            0, "PASS"))

        results.append(expect(
            "missing diagnostic fails",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "int x;\n"
                "// CHECK-MESSAGES: [[@LINE-1]] rascal-demo: banned construct\n"
            )),
            1, "not emitted"))

        results.append(expect(
            "unexpected diagnostic fails",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "int x;  // EMIT(rascal-demo, banned construct here)\n"
                "int y;  // EMIT(rascal-demo, second finding)\n"
                "// CHECK-MESSAGES: [[@LINE-2]] rascal-demo: banned construct\n"
            )),
            1, "unexpected"))

        results.append(expect(
            "wrong-line annotation fails",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "int x;  // EMIT(rascal-demo, banned construct here)\n"
                "// CHECK-MESSAGES: [[@LINE]] rascal-demo: banned construct\n"
            )),
            1, "not emitted"))

        results.append(expect(
            "clean fixture with NONE marker passes",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "// CHECK-MESSAGES-NONE\n"
                "int x;\n"
            )),
            0, "clean"))

        results.append(expect(
            "violated NONE marker fails",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "// CHECK-MESSAGES-NONE\n"
                "int x;  // EMIT(rascal-demo, sneaky finding)\n"
            )),
            1, "unexpected"))

        results.append(expect(
            "non-rascal diagnostics are ignored",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "// CHECK-MESSAGES-NONE\n"
                "int x;  // EMIT(clang-analyzer-foo, other tool noise)\n"
            )),
            0, "clean"))

        results.append(expect(
            "missing RASCAL-CHECKS header is a harness error",
            run_harness(tmp, mock, "int x;\n"),
            2, "RASCAL-CHECKS"))

        # RASCAL-PATH relocation: the mock prints the path it was
        # given; the harness must still attribute diagnostics to the
        # relocated copy.
        results.append(expect(
            "RASCAL-PATH relocation keeps attribution",
            run_harness(tmp, mock, (
                "// RASCAL-CHECKS: rascal-demo\n"
                "// RASCAL-PATH: src/stats/moved.cpp\n"
                "int x;  // EMIT(rascal-demo, finding in moved file)\n"
                "// CHECK-MESSAGES: [[@LINE-1]] rascal-demo: finding in moved\n"
            )),
            0, "PASS"))

    # The shipped fixtures must at least parse (annotation syntax,
    # headers present) even where clang-tidy is unavailable.
    sys.path.insert(0, str(HERE))
    import run_fixture_test as rft
    for fixture in sorted((HERE / "fixtures").glob("*.cpp")):
        checks, _relpath, expected, expect_none = rft.parse_fixture(
            fixture.read_text())
        ok = bool(checks) and (bool(expected) != expect_none)
        print(f"{'ok' if ok else 'FAIL'}: fixture parses: {fixture.name} "
              f"({len(expected)} annotation(s)"
              f"{', expect-none' if expect_none else ''})")
        results.append(ok)

    if all(results):
        print(f"selftest: {len(results)} assertions passed")
        return 0
    print("selftest: FAILURES present")
    return 1


if __name__ == "__main__":
    sys.exit(main())

# Smoke test: load the plugin and verify every rascal- check shows up
# in `clang-tidy --list-checks`.
execute_process(
  COMMAND ${CLANG_TIDY} --load ${PLUGIN} --checks=-*,rascal-* --list-checks
  OUTPUT_VARIABLE listing
  ERROR_VARIABLE listing_err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clang-tidy --load failed (${rc}): ${listing_err}")
endif()
foreach(check
    rascal-ambient-rng
    rascal-unordered-iteration
    rascal-wall-clock
    rascal-span-raii
    rascal-signal-handler-safety)
  if(NOT listing MATCHES "${check}")
    message(FATAL_ERROR
      "check '${check}' missing from --list-checks output:\n${listing}")
  endif()
endforeach()

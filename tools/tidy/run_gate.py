#!/usr/bin/env python3
"""CI gate: run the rascal-* checks over the whole codebase.

Reads compile_commands.json from the build directory (the top-level
CMakeLists exports it unconditionally), filters the translation units
to the gated source roots, and runs `clang-tidy --load <plugin>
--checks=-*,rascal-*` over each.  Any rascal-* warning fails the gate;
suppressions must be explicit NOLINT(rascal-...) annotations with a
justification comment in the source.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

# The repo .clang-tidy sets WarningsAsErrors: '*', which renders
# findings as 'error: ... [check,-warnings-as-errors]'; match both.
DIAG_RE = re.compile(
    r"^(?P<file>.+?):(?P<line>\d+):(?P<col>\d+):\s+(?:warning|error):\s+"
    r"(?P<msg>.*?)\s+\[(?P<check>rascal-[\w-]+)(?:,-warnings-as-errors)?\]\s*$"
)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--clang-tidy", required=True)
    ap.add_argument("--plugin", required=True)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--source-root", default=".")
    ap.add_argument("--paths", nargs="+", default=["src", "tools"],
                    help="source roots (relative to --source-root) to gate")
    args = ap.parse_args()

    build_dir = pathlib.Path(args.build_dir).resolve()
    source_root = pathlib.Path(args.source_root).resolve()
    compdb = build_dir / "compile_commands.json"
    if not compdb.exists():
        print(f"gate: no {compdb}; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS (the default here)")
        return 2

    roots = [(source_root / p).resolve() for p in args.paths]
    files = []
    for entry in json.loads(compdb.read_text()):
        f = pathlib.Path(entry["directory"], entry["file"]).resolve()
        if any(r in f.parents for r in roots) and f.suffix in (
                ".cpp", ".cc", ".cxx"):
            files.append(f)
    files = sorted(set(files))
    if not files:
        print("gate: no translation units under "
              + ", ".join(args.paths))
        return 2
    print(f"gate: {len(files)} translation unit(s) under "
          + ", ".join(args.paths))

    findings = []
    failed_tus = []
    for f in files:
        proc = subprocess.run(
            [args.clang_tidy, f"--load={args.plugin}",
             "--checks=-*,rascal-*", "-p", str(build_dir),
             "--quiet", str(f)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        tu_findings = [m.groupdict()
                       for m in map(DIAG_RE.match,
                                    proc.stdout.splitlines()) if m]
        findings.extend(tu_findings)
        status = f"{len(tu_findings)} finding(s)" if tu_findings else "clean"
        if proc.returncode != 0 and not tu_findings:
            # nonzero without findings = the TU did not parse
            failed_tus.append(f)
            status = f"ERROR (rc={proc.returncode})"
            sys.stderr.write(proc.stderr)
        print(f"  {f.relative_to(source_root)}: {status}")

    if failed_tus:
        print(f"gate: {len(failed_tus)} translation unit(s) failed to "
              "analyze")
        return 2
    if findings:
        print(f"gate: FAILED — {len(findings)} rascal-* finding(s):")
        for d in findings:
            rel = pathlib.Path(d["file"]).resolve()
            try:
                rel = rel.relative_to(source_root)
            except ValueError:
                pass
            print(f"  {rel}:{d['line']}:{d['col']}: "
                  f"[{d['check']}] {d['msg']}")
        return 1
    print("gate: PASSED — zero rascal-* findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())

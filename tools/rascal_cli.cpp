// rascal_cli — solve availability models from .rasc files.
//
//   rascal_cli solve MODEL.rasc [--set NAME=VALUE ...] [--method M]
//   rascal_cli lint  MODEL.rasc [--set NAME=VALUE ...] [--json] [--werror]
//   rascal_cli states MODEL.rasc [--set NAME=VALUE ...]
//   rascal_cli sweep MODEL.rasc --param NAME --from A --to B
//              [--points N] [--metric availability|downtime|mtbf]
//              [--set NAME=VALUE ...]
//   rascal_cli mttf  MODEL.rasc [--start STATE] [--set NAME=VALUE ...]
//   rascal_cli lump  MODEL.rasc [--set NAME=VALUE ...]
//   rascal_cli dot   MODEL.rasc [--set NAME=VALUE ...]   (Graphviz)
//   rascal_cli sens  MODEL.rasc [--set NAME=VALUE ...]   (exact d/dtheta)
//   rascal_cli golden GOLDEN_DIR [--update-golden]       (paper regression)
//   rascal_cli uncertainty MODEL.rasc --range NAME=LO:HI ...
//              [--samples N] [--seed S] [--lhs] [--threads N]
//              [--metric availability|downtime|mtbf] [--set NAME=VALUE ...]
//   rascal_cli campaign [--trials N] [--seed S] [--threads N] [--fir P]
//   rascal_cli batch REQUESTS.jsonl [--out FILE] [--threads N]
//              [--cache-entries N]     (JSONL solve requests -> records)
//   rascal_cli serve [--out FILE] [--threads N] [--cache-entries N]
//              (batch over stdin; see docs/serving.md for the schema)
//
// Every subcommand additionally accepts --trace FILE (write a Chrome
// trace-event JSON viewable in Perfetto / chrome://tracing) and
// --stats (print the span/counter summary to stderr).  Telemetry
// never touches the RNG stream, so traced runs produce bit-identical
// numerical output on stdout.
//
// Long-running subcommands (uncertainty, campaign, batch, serve) accept
// --checkpoint FILE / --resume / --deadline SECS: the run writes
// periodic atomic checkpoints, drains cleanly on SIGINT/SIGTERM or
// deadline expiry with partial results clearly marked, and a resumed
// run emits stdout byte-identical to an uninterrupted one.
//
// Exit codes: 0 success; 1 internal error; 2 usage; 3 model or
// validation error (parse failure, lint errors, bad ranges, corrupt
// checkpoint, golden mismatch); 4 solver nonconvergence or deadline
// exceeded; 128+N interrupted by signal N after checkpointing (130
// SIGINT, 143 SIGTERM).
//
// Methods: gth (default), lu, power, gauss-seidel.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/exact_sensitivity.h"
#include "analysis/parametric.h"
#include "analysis/uncertainty.h"
#include "check/golden.h"
#include "check/paper_golden.h"
#include "core/metrics.h"
#include "ctmc/absorption.h"
#include "ctmc/lumping.h"
#include "ctmc/steady_state.h"
#include "faultinj/injector.h"
#include "io/dot_export.h"
#include "io/model_file.h"
#include "io/number_parse.h"
#include "lint/lint.h"
#include "obs/trace.h"
#include "report/ascii_plot.h"
#include "report/diagnostics.h"
#include "report/table.h"
#include "resil/resil.h"
#include "serve/batch.h"

namespace {

using namespace rascal;

// Exit-code contract (documented in usage() and docs/resilience.md).
constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitModelError = 3;
constexpr int kExitNonConvergence = 4;  // also: deadline exceeded

// Residuals above this mean the printed pi cannot be trusted; the CLI
// warns on stderr and exits kExitNonConvergence even though metrics
// were printed (satellite: nonconvergence must not be silent).
constexpr double kResidualWarnLimit = 1e-6;

// One process-wide token: the signal handlers latch it, --deadline
// arms it, and every solver / sampling loop polls it.
resil::CancellationToken g_cancel;

[[nodiscard]] int interrupted_exit_code() {
  if (g_cancel.reason() == resil::CancelReason::kSignal) {
    return 128 + g_cancel.signal_number();
  }
  return kExitNonConvergence;  // deadline (or programmatic cancel)
}

int usage() {
  std::cerr
      << "usage:\n"
         "  rascal_cli solve  MODEL.rasc [--set NAME=VALUE ...] "
         "[--method gth|lu|power|gauss-seidel|gmres|bicgstab]\n"
         "             [--precond none|jacobi|ilu0]"
         " [--sparse-threshold N]\n"
         "  rascal_cli lint   MODEL.rasc [--set NAME=VALUE ...] [--json]"
         " [--werror]\n"
         "             (static analysis; exit 3 on errors, or on"
         " warnings with --werror)\n"
         "  rascal_cli states MODEL.rasc [--set NAME=VALUE ...]\n"
         "  rascal_cli sweep  MODEL.rasc --param NAME --from A --to B\n"
         "             [--points N] [--metric availability|downtime|mtbf]"
         " [--set NAME=VALUE ...] [--threads N]\n"
         "             (--threads 0 = auto: RASCAL_THREADS env, else all"
         " cores)\n"
         "  rascal_cli mttf   MODEL.rasc [--start STATE] "
         "[--set NAME=VALUE ...]\n"
         "  rascal_cli lump   MODEL.rasc [--set NAME=VALUE ...]\n"
         "  rascal_cli dot    MODEL.rasc [--set NAME=VALUE ...]\n"
         "  rascal_cli sens   MODEL.rasc [--set NAME=VALUE ...]\n"
         "  rascal_cli golden GOLDEN_DIR [--update-golden]\n"
         "             (verify paper-golden files; --update-golden"
         " regenerates them)\n"
         "  rascal_cli uncertainty MODEL.rasc --range NAME=LO:HI ...\n"
         "             [--samples N] [--seed S] [--lhs] [--threads N]\n"
         "             [--metric availability|downtime|mtbf]"
         " [--set NAME=VALUE ...]\n"
         "  rascal_cli campaign [--trials N] [--seed S] [--threads N]"
         " [--fir P]\n"
         "             (fault-injection campaign on the simulated"
         " testbed)\n"
         "  rascal_cli batch  REQUESTS.jsonl [--out FILE] [--threads N]"
         " [--cache-entries N]\n"
         "             [--max-attempts N] [--admission-states N]"
         " [--admission-nnz N] [--queue-cap N]\n"
         "             (one JSONL solve request per line -> one JSONL"
         " result record per line;\n"
         "              supervised: deterministic retry/fallback ladder,"
         " admission shedding)\n"
         "  rascal_cli serve  [--out FILE] [--threads N]"
         " [--cache-entries N]\n"
         "             [--max-attempts N] [--admission-states N]"
         " [--admission-nnz N] [--queue-cap N]\n"
         "             (batch over stdin; schema in docs/serving.md)\n"
         "\n"
         "  global flags (any subcommand):\n"
         "    --trace FILE   write a Chrome trace-event JSON"
         " (chrome://tracing, Perfetto)\n"
         "    --stats        print the telemetry summary to stderr\n"
         "    --deadline SECS       cooperative wall-clock budget;"
         " drains and exits 4\n"
         "    --max-iter-budget N   cap iterative-solver iterations"
         " per solve\n"
         "\n"
         "  resilience flags (uncertainty, campaign, batch, serve):\n"
         "    --checkpoint FILE  write periodic atomic checkpoints of"
         " completed indices\n"
         "    --resume           continue from FILE; resumed output is"
         " byte-identical\n"
         "\n"
         "  exit codes: 0 ok; 1 internal error; 2 usage; 3 model/"
         "validation error\n"
         "    (incl. failed/shed/lost batch records); 4 nonconvergence"
         " or deadline;\n"
         "    128+N interrupted by signal N\n";
  return kExitUsage;
}

struct Arguments {
  std::string command;
  std::string model_path;
  expr::ParameterSet overrides;
  ctmc::SteadyStateMethod method = ctmc::SteadyStateMethod::kGth;
  linalg::PrecondKind precond = linalg::PrecondKind::kIlu0;
  std::size_t sparse_threshold = 0;  // 0 = library default
  std::string sweep_param;
  double from = 0.0;
  double to = 0.0;
  std::size_t points = 11;
  std::string metric = "availability";
  std::string start_state;  // mttf: defaults to the first state
  std::size_t threads = 0;  // 0 = auto (RASCAL_THREADS, else all cores)
  bool update_golden = false;
  bool json = false;    // lint: machine-readable output
  bool werror = false;  // lint: warnings fail the run

  // uncertainty
  std::vector<stats::ParameterRange> ranges;
  std::size_t samples = 1000;
  bool latin_hypercube = false;

  // campaign
  std::size_t trials = 3287;  // the paper's campaign size
  double true_fir = 0.0;

  std::uint64_t seed = 2004;
  bool seed_set = false;  // campaign defaults to 1973 unless --seed given

  // global observability flags
  std::string trace_path;  // empty = no trace file
  bool stats = false;      // print telemetry summary to stderr

  // resilience flags
  std::string checkpoint_path;     // empty = no checkpointing
  bool resume = false;             // continue from checkpoint_path
  double deadline_seconds = 0.0;   // 0 = no deadline
  std::size_t max_iter_budget = 0; // 0 = library default

  // batch/serve
  std::string out_path;              // empty = results to stdout
  std::size_t cache_entries = 1024;  // shared solve-cache slots; 0 off

  // batch/serve supervision (serve/supervise.h)
  std::size_t max_attempts = 3;      // retry bound incl. first try
  std::size_t admission_states = 0;  // 0 = no state-count cap
  std::size_t admission_nnz = 0;     // 0 = no transition-count cap
  std::size_t queue_cap = 0;         // 0 = unbounded in-flight queue
};

// Every numeric flag goes through io/number_parse: the whole token
// must be consumed (no "1.5junk") and the value must be finite (no
// "nan", "inf", "1e999").  A rejected value prints the reason here
// and the flag loop bails out to usage() with exit code 2.
bool parse_double(const char* text, double& out) {
  if (io::parse_finite_double(text, out)) return true;
  std::cerr << "invalid value '" << text << "': expected a finite number\n";
  return false;
}

bool parse_size(const char* text, std::size_t& out) {
  if (io::parse_size(text, out)) return true;
  std::cerr << "invalid value '" << text
            << "': expected a non-negative integer\n";
  return false;
}

bool parse_set(const std::string& text, expr::ParameterSet& out) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    std::cerr << "invalid --set '" << text << "': expected NAME=VALUE\n";
    return false;
  }
  double value = 0.0;
  if (!io::parse_finite_double(text.substr(eq + 1), value)) {
    std::cerr << "invalid --set '" << text
              << "': value must be a finite number\n";
    return false;
  }
  out.set(text.substr(0, eq), value);
  return true;
}

// NAME=LO:HI, e.g. FIR=0:0.001.
bool parse_range(const std::string& text, stats::ParameterRange& out) {
  const auto eq = text.find('=');
  const auto colon = text.find(':', eq == std::string::npos ? 0 : eq);
  if (eq == std::string::npos || eq == 0 || colon == std::string::npos ||
      colon < eq + 2 || colon + 1 >= text.size()) {
    std::cerr << "invalid --range '" << text << "': expected NAME=LO:HI\n";
    return false;
  }
  out.name = text.substr(0, eq);
  return parse_double(text.substr(eq + 1, colon - eq - 1).c_str(), out.lo) &&
         parse_double(text.substr(colon + 1).c_str(), out.hi);
}

bool parse_uint64(const char* text, std::uint64_t& out) {
  if (io::parse_uint64(text, out)) return true;
  std::cerr << "invalid value '" << text
            << "': expected a non-negative integer\n";
  return false;
}

const char* method_name(ctmc::SteadyStateMethod method) {
  switch (method) {
    case ctmc::SteadyStateMethod::kGth: return "gth";
    case ctmc::SteadyStateMethod::kLu: return "lu";
    case ctmc::SteadyStateMethod::kPower: return "power";
    case ctmc::SteadyStateMethod::kGaussSeidel: return "gauss-seidel";
    case ctmc::SteadyStateMethod::kGmres: return "gmres";
    case ctmc::SteadyStateMethod::kBiCgStab: return "bicgstab";
  }
  return "unknown";
}

bool parse_method(const std::string& name, ctmc::SteadyStateMethod& out) {
  if (name == "gth") out = ctmc::SteadyStateMethod::kGth;
  else if (name == "lu") out = ctmc::SteadyStateMethod::kLu;
  else if (name == "power") out = ctmc::SteadyStateMethod::kPower;
  else if (name == "gauss-seidel") out = ctmc::SteadyStateMethod::kGaussSeidel;
  else if (name == "gmres") out = ctmc::SteadyStateMethod::kGmres;
  else if (name == "bicgstab") out = ctmc::SteadyStateMethod::kBiCgStab;
  else return false;
  return true;
}

bool parse_precond(const std::string& name, linalg::PrecondKind& out) {
  if (name == "none") out = linalg::PrecondKind::kNone;
  else if (name == "jacobi") out = linalg::PrecondKind::kJacobi;
  else if (name == "ilu0") out = linalg::PrecondKind::kIlu0;
  else return false;
  return true;
}

bool parse_arguments(int argc, char** argv, Arguments& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  // `campaign` drives the built-in simulated testbed and `serve`
  // reads requests from stdin; every other subcommand requires a
  // positional argument (a model file, the golden directory, or the
  // batch request file).
  int first_flag = 2;
  if (args.command != "campaign" && args.command != "serve") {
    if (argc < 3) return false;
    args.model_path = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--set") {
      const char* value = next();
      if (!value || !parse_set(value, args.overrides)) return false;
    } else if (flag == "--method") {
      const char* value = next();
      if (!value || !parse_method(value, args.method)) return false;
    } else if (flag == "--precond") {
      const char* value = next();
      if (!value || !parse_precond(value, args.precond)) return false;
    } else if (flag == "--sparse-threshold") {
      const char* value = next();
      if (!value || !parse_size(value, args.sparse_threshold)) return false;
    } else if (flag == "--param") {
      const char* value = next();
      if (!value) return false;
      args.sweep_param = value;
    } else if (flag == "--from" || flag == "--to") {
      const char* value = next();
      if (!value ||
          !parse_double(value, flag == "--from" ? args.from : args.to)) {
        return false;
      }
    } else if (flag == "--points") {
      const char* value = next();
      if (!value || !parse_size(value, args.points)) return false;
    } else if (flag == "--threads") {
      const char* value = next();
      if (!value || !parse_size(value, args.threads)) return false;
    } else if (flag == "--range") {
      const char* value = next();
      stats::ParameterRange range;
      if (!value || !parse_range(value, range)) return false;
      args.ranges.push_back(std::move(range));
    } else if (flag == "--samples") {
      const char* value = next();
      if (!value || !parse_size(value, args.samples)) return false;
    } else if (flag == "--trials") {
      const char* value = next();
      if (!value || !parse_size(value, args.trials)) return false;
    } else if (flag == "--seed") {
      const char* value = next();
      if (!value || !parse_uint64(value, args.seed)) return false;
      args.seed_set = true;
    } else if (flag == "--fir") {
      const char* value = next();
      if (!value || !parse_double(value, args.true_fir)) return false;
    } else if (flag == "--lhs") {
      args.latin_hypercube = true;
    } else if (flag == "--trace") {
      const char* value = next();
      if (!value) return false;
      args.trace_path = value;
    } else if (flag == "--stats") {
      args.stats = true;
    } else if (flag == "--checkpoint") {
      const char* value = next();
      if (!value) return false;
      args.checkpoint_path = value;
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--deadline") {
      const char* value = next();
      if (!value || !parse_double(value, args.deadline_seconds)) return false;
    } else if (flag == "--max-iter-budget") {
      const char* value = next();
      if (!value || !parse_size(value, args.max_iter_budget)) return false;
    } else if (flag == "--out") {
      const char* value = next();
      if (!value) return false;
      args.out_path = value;
    } else if (flag == "--cache-entries") {
      const char* value = next();
      if (!value || !parse_size(value, args.cache_entries)) return false;
    } else if (flag == "--max-attempts") {
      const char* value = next();
      if (!value || !parse_size(value, args.max_attempts)) return false;
      if (args.max_attempts == 0) {
        std::cerr << "invalid value '0': --max-attempts counts the first "
                     "try, so it must be at least 1\n";
        return false;
      }
    } else if (flag == "--admission-states") {
      const char* value = next();
      if (!value || !parse_size(value, args.admission_states)) return false;
    } else if (flag == "--admission-nnz") {
      const char* value = next();
      if (!value || !parse_size(value, args.admission_nnz)) return false;
    } else if (flag == "--queue-cap") {
      const char* value = next();
      if (!value || !parse_size(value, args.queue_cap)) return false;
    } else if (flag == "--update-golden") {
      args.update_golden = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--werror") {
      args.werror = true;
    } else if (flag == "--metric") {
      const char* value = next();
      if (!value) return false;
      args.metric = value;
    } else if (flag == "--start") {
      const char* value = next();
      if (!value) return false;
      args.start_state = value;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

void print_metrics(const core::AvailabilityMetrics& m) {
  std::printf("availability        : %.9f (%s)\n", m.availability,
              report::format_percent(m.availability, 5).c_str());
  std::printf("yearly downtime     : %.4f minutes\n",
              m.downtime_minutes_per_year);
  std::printf("failure frequency   : %.6e per hour\n", m.failure_frequency);
  std::printf("MTBF                : %.2f hours\n", m.mtbf_hours);
  std::printf("MTTR                : %.4f hours\n", m.mttr_hours);
  std::printf("expected reward rate: %.9f\n", m.expected_reward_rate);
}

// SolveControl for the interactive solve paths: iteration budget from
// --max-iter-budget, the process cancel token, and GTH escalation so a
// nonconverging iterative method still yields a trustworthy pi (with a
// stderr warning) instead of dying.
ctmc::SolveControl interactive_solve_control(const Arguments& args) {
  ctmc::SolveControl control;
  control.max_iterations = args.max_iter_budget;
  control.cancel = &g_cancel;
  control.escalate = true;
  control.precond = args.precond;
  control.sparse_threshold = args.sparse_threshold;
  return control;
}

// Batch solves (uncertainty samples): no escalation — a sample whose
// solve fails is recorded with its parameter draw and dropped, which
// keeps the failure visible in the final report instead of silently
// switching methods mid-campaign.
ctmc::SolveControl batch_solve_control(const Arguments& args) {
  ctmc::SolveControl control;
  control.max_iterations = args.max_iter_budget;
  control.cancel = &g_cancel;
  control.escalate = false;
  control.precond = args.precond;
  control.sparse_threshold = args.sparse_threshold;
  return control;
}

// Nonconvergence must reach the user, not just an obs counter: warn
// about escalations and return kExitNonConvergence when the printed pi
// failed its residual check.
int report_solve_quality(const ctmc::SteadyState& steady,
                         const Arguments& args) {
  if (steady.escalated) {
    std::cerr << "warning: method '" << method_name(args.method)
              << "' did not produce a usable solution; escalated to GTH\n";
  }
  if (steady.residual > kResidualWarnLimit) {
    std::cerr << "warning: steady-state residual " << steady.residual
              << " exceeds " << kResidualWarnLimit
              << "; the printed solution did not converge\n";
    return kExitNonConvergence;
  }
  return kExitOk;
}

int run_solve(const Arguments& args) {
  const io::ModelFile file = io::load_model(args.model_path);
  if (!file.name.empty()) std::printf("model: %s\n\n", file.name.c_str());
  const ctmc::Ctmc chain = file.bind(args.overrides);
  const auto steady = ctmc::solve_steady_state(
      chain, args.method, ctmc::Validation::kOn,
      interactive_solve_control(args));
  print_metrics(core::availability_metrics(chain, steady));
  return report_solve_quality(steady, args);
}

int run_lint(const Arguments& args) {
  lint::LintReport report;
  try {
    const io::ModelFile file =
        io::load_model(args.model_path, io::LintOnLoad::kOff);
    report = io::lint_model_file(file, args.overrides);
  } catch (const io::ModelFileError& e) {
    // The file did not even parse; surface that as an R000 diagnostic
    // so text and JSON consumers see one uniform shape.
    lint::Diagnostic d;
    d.code = lint::codes::kParseError;
    d.severity = lint::Severity::kError;
    d.message = e.message();
    d.location.file = args.model_path;
    d.location.line = e.line();
    d.location.column = e.column();
    report.add(std::move(d));
  }
  std::cout << (args.json ? report::render_diagnostics_json(report)
                          : report::render_diagnostics_text(report));
  if (report.has_errors()) return kExitModelError;
  if (args.werror && report.count(lint::Severity::kWarning) > 0) {
    return kExitModelError;
  }
  return kExitOk;
}

int run_states(const Arguments& args) {
  const io::ModelFile file = io::load_model(args.model_path);
  const ctmc::Ctmc chain = file.bind(args.overrides);
  const auto steady = ctmc::solve_steady_state(
      chain, args.method, ctmc::Validation::kOn,
      interactive_solve_control(args));
  report::TextTable table({"State", "Reward", "Probability",
                           "Minutes/year"});
  for (ctmc::StateId s = 0; s < chain.num_states(); ++s) {
    table.add_row({chain.state_name(s),
                   report::format_general(chain.reward(s), 3),
                   report::format_general(steady.probability(s), 6),
                   report::format_fixed(
                       steady.probability(s) * 8760.0 * 60.0, 3)});
  }
  std::cout << table.to_string();
  return report_solve_quality(steady, args);
}

int run_sweep(const Arguments& args) {
  if (args.sweep_param.empty() || args.points < 2) {
    return usage();
  }
  const io::ModelFile file = io::load_model(args.model_path);
  const ctmc::SolveControl control = interactive_solve_control(args);
  const analysis::ContextModelFunction metric_fn =
      [&](const expr::ParameterSet& params, ctmc::SolveCache& cache) {
        const ctmc::Ctmc chain = file.model.bind(params);
        const auto m = core::availability_metrics(
            chain, cache.steady_state(chain, args.method,
                                      ctmc::Validation::kOn, control));
        if (args.metric == "downtime") return m.downtime_minutes_per_year;
        if (args.metric == "mtbf") return m.mtbf_hours;
        return m.availability;
      };
  const auto values = analysis::linspace(args.from, args.to, args.points);
  const auto sweep = analysis::parametric_sweep(
      metric_fn, file.parameters.with(args.overrides), args.sweep_param,
      values, args.threads);

  std::vector<double> ys;
  report::TextTable table({args.sweep_param, args.metric});
  for (const auto& point : sweep) {
    ys.push_back(point.metric);
    table.add_row({report::format_general(point.parameter_value, 6),
                   report::format_general(point.metric, 9)});
  }
  std::cout << table.to_string() << "\n";
  report::PlotOptions plot;
  plot.title = args.metric + " vs " + args.sweep_param;
  plot.x_label = args.sweep_param;
  std::cout << report::line_plot(values, ys, plot);
  return 0;
}

int run_mttf(const Arguments& args) {
  const io::ModelFile file = io::load_model(args.model_path);
  const ctmc::Ctmc chain = file.bind(args.overrides);
  const auto down_states = chain.states_with_reward_below(0.5);
  if (down_states.empty()) {
    std::cerr << "error: the model has no down states\n";
    return kExitModelError;
  }
  const ctmc::StateId start =
      args.start_state.empty() ? 0 : chain.state(args.start_state);
  const auto times = ctmc::mean_time_to_absorption(chain, down_states);
  std::printf("MTTF from '%s' to the first down state: %.4f hours "
              "(%.2f days)\n",
              chain.state_name(start).c_str(), times[start],
              times[start] / 24.0);
  const auto hit = ctmc::absorption_probabilities(chain, down_states);
  for (std::size_t j = 0; j < down_states.size(); ++j) {
    std::printf("  P(first failure is '%s') = %.4f\n",
                chain.state_name(down_states[j]).c_str(), hit(start, j));
  }
  return 0;
}

int run_lump(const Arguments& args) {
  const io::ModelFile file = io::load_model(args.model_path);
  const ctmc::Ctmc chain = file.bind(args.overrides);
  const ctmc::Partition partition = ctmc::coarsest_ordinary_lumping(chain);
  std::printf("%zu states lump into %zu blocks:\n", chain.num_states(),
              partition.size());
  for (std::size_t b = 0; b < partition.size(); ++b) {
    std::printf("  block %zu:", b);
    for (ctmc::StateId s : partition[b]) {
      std::printf(" %s", chain.state_name(s).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int run_sens(const Arguments& args) {
  const io::ModelFile file = io::load_model(args.model_path);
  const expr::ParameterSet params = file.parameters.with(args.overrides);
  report::TextTable table({"Parameter", "Value", "dA/dtheta",
                           "dDowntime/dtheta (min/yr per unit)"});
  for (const std::string& name : file.model.parameters()) {
    analysis::ExactSensitivity s;
    try {
      s = analysis::steady_state_sensitivity(file.model, params, name);
    } catch (const std::domain_error&) {
      continue;  // non-differentiable use (abs/min/max); skip
    }
    table.add_row({name, report::format_general(params.get(name), 6),
                   report::format_general(s.d_availability, 4),
                   report::format_general(s.d_downtime_minutes, 4)});
  }
  std::cout << table.to_string();
  return 0;
}

int run_golden(const Arguments& args) {
  // args.model_path is the golden directory (e.g. tests/golden).
  bool all_ok = true;
  for (const std::string& group : check::paper_golden_groups()) {
    const std::string path = args.model_path + "/" + group + ".json";
    const check::GoldenRecord fresh = check::compute_paper_golden(group);
    if (args.update_golden) {
      check::write_golden(path, fresh);
      std::printf("wrote %s (%zu metrics)\n", path.c_str(), fresh.size());
      continue;
    }
    const check::GoldenRecord locked = check::load_golden(path);
    const auto problems = check::compare_golden(locked, fresh);
    if (problems.empty()) {
      std::printf("%-12s OK (%zu metrics)\n", group.c_str(), locked.size());
    } else {
      all_ok = false;
      std::printf("%-12s FAILED\n", group.c_str());
      for (const std::string& p : problems) {
        std::printf("  %s\n", p.c_str());
      }
    }
  }
  if (!all_ok) {
    std::cerr << "golden mismatch; if the drift is intentional, rerun with "
                 "--update-golden\n";
    return kExitModelError;
  }
  return kExitOk;
}

// Shared --checkpoint/--resume handling: builds the Checkpointer
// in place (it holds a mutex, so it cannot be moved or returned by
// value), verifying kind/digest/total, refusing to clobber an existing
// checkpoint without --resume, and reporting progress on stderr so
// stdout stays byte-comparable across interrupted/resumed runs.
// Returns the exit code to bail out with, or kExitOk to proceed.
int open_checkpoint(const Arguments& args, const char* kind,
                    std::uint64_t digest, std::uint64_t total,
                    std::optional<resil::Checkpointer>& checkpoint) {
  if (args.checkpoint_path.empty()) {
    if (args.resume) {
      std::cerr << "error: --resume requires --checkpoint FILE\n";
      return kExitUsage;
    }
    return kExitOk;
  }
  if (resil::checkpoint_file_exists(args.checkpoint_path) && !args.resume) {
    std::cerr << "error: checkpoint '" << args.checkpoint_path
              << "' already exists; pass --resume to continue it or "
                 "delete it to start over\n";
    return kExitModelError;
  }
  checkpoint.emplace(args.checkpoint_path, kind, digest, total);
  if (resil::checkpoint_file_exists(args.checkpoint_path)) {
    const std::size_t restored = checkpoint->resume_from_disk();
    std::cerr << "resuming from checkpoint '" << args.checkpoint_path
              << "': " << restored << "/" << total
              << " indices already done\n";
  } else if (args.resume) {
    std::cerr << "note: --resume given but checkpoint '"
              << args.checkpoint_path
              << "' does not exist; starting fresh\n";
  }
  return kExitOk;
}

void print_partial_marker(const char* what, const std::string& reason,
                          std::size_t done, std::size_t total) {
  std::printf("*** PARTIAL RESULTS: interrupted (%s) after %zu/%zu %s ***\n",
              reason.c_str(), done, total, what);
}

int run_uncertainty(const Arguments& args) {
  if (args.ranges.empty()) {
    std::cerr << "uncertainty: at least one --range NAME=LO:HI required\n";
    return usage();
  }
  const io::ModelFile file = io::load_model(args.model_path);
  const ctmc::SolveControl solve_control = batch_solve_control(args);
  const analysis::ContextModelFunction metric_fn =
      [&](const expr::ParameterSet& params, ctmc::SolveCache& cache) {
        const ctmc::Ctmc chain = file.model.bind(params);
        const auto m = core::availability_metrics(
            chain, cache.steady_state(chain, args.method,
                                      ctmc::Validation::kOn, solve_control));
        if (args.metric == "downtime") return m.downtime_minutes_per_year;
        if (args.metric == "mtbf") return m.mtbf_hours;
        return m.availability;
      };
  analysis::UncertaintyOptions options;
  options.samples = args.samples;
  options.seed = args.seed;
  options.latin_hypercube = args.latin_hypercube;
  options.threads = args.threads;
  options.control.cancel = &g_cancel;
  options.control.skip_failures = true;

  std::optional<resil::Checkpointer> checkpoint;
  const int checkpoint_error = open_checkpoint(
      args, "uncertainty",
      analysis::uncertainty_checkpoint_digest(options, args.ranges),
      options.samples, checkpoint);
  if (checkpoint_error != kExitOk) return checkpoint_error;
  if (checkpoint) options.control.checkpoint = &*checkpoint;

  const auto result = analysis::uncertainty_analysis(
      metric_fn, file.parameters.with(args.overrides), args.ranges, options);

  if (result.interrupted) {
    print_partial_marker("samples", result.interrupt_reason,
                         result.completed + result.failures.size(),
                         result.requested);
  }
  if (!file.name.empty()) std::printf("model: %s\n", file.name.c_str());
  std::printf("metric: %s over %zu %s samples\n\n", args.metric.c_str(),
              args.samples, args.latin_hypercube ? "Latin-hypercube"
                                                 : "Monte Carlo");
  report::TextTable ranges_table({"Parameter", "Low", "High"});
  for (const stats::ParameterRange& range : args.ranges) {
    ranges_table.add_row({range.name, report::format_general(range.lo, 6),
                          report::format_general(range.hi, 6)});
  }
  std::cout << ranges_table.to_string() << "\n";
  std::printf("mean        : %.9g\n", result.mean);
  std::printf("stddev      : %.9g\n", result.summary.stddev());
  std::printf("min .. max  : %.9g .. %.9g\n", result.summary.min(),
              result.summary.max());
  std::printf("80%% interval: [%.9g, %.9g]\n", result.interval80.lower,
              result.interval80.upper);
  std::printf("90%% interval: [%.9g, %.9g]\n", result.interval90.lower,
              result.interval90.upper);
  if (args.metric == "downtime") {
    // Five-9s = 5.25 downtime minutes per year (paper Section 7).
    std::printf("P(five-9s)  : %.4f\n", result.fraction_below(5.26));
  }
  if (!result.failures.empty()) {
    std::printf("\ndropped samples (%zu of %zu; solves failed, parameter "
                "draws recorded):\n",
                result.failures.size(), result.requested);
    for (const analysis::SampleFailure& failure : result.failures) {
      std::printf("  sample %zu:", failure.index);
      for (std::size_t d = 0; d < args.ranges.size(); ++d) {
        std::printf(" %s=%.9g", args.ranges[d].name.c_str(),
                    failure.parameters[d]);
      }
      std::printf("\n    error: %s\n", failure.error.c_str());
    }
  }
  if (checkpoint) {
    std::cerr << "checkpoint written to '" << checkpoint->path() << "' ("
              << checkpoint->size() << "/" << checkpoint->total()
              << " indices)\n";
  }
  if (result.interrupted) return interrupted_exit_code();
  return kExitOk;
}

int run_campaign_cmd(const Arguments& args) {
  faultinj::CampaignOptions options;
  options.trials = args.trials;
  if (args.seed_set) options.seed = args.seed;
  options.threads = args.threads;
  options.recovery.true_imperfect_recovery = args.true_fir;
  options.control.cancel = &g_cancel;
  options.control.skip_failures = true;

  std::optional<resil::Checkpointer> checkpoint;
  const int checkpoint_error =
      open_checkpoint(args, "campaign",
                      faultinj::campaign_checkpoint_digest(options),
                      options.trials, checkpoint);
  if (checkpoint_error != kExitOk) return checkpoint_error;
  if (checkpoint) options.control.checkpoint = &*checkpoint;

  const faultinj::CampaignResult result = faultinj::run_campaign(options);

  if (result.interrupted) {
    print_partial_marker("trials", result.interrupt_reason,
                         result.trials + result.failures.size(),
                         result.requested);
  }
  std::printf("trials              : %llu\n",
              static_cast<unsigned long long>(result.trials));
  std::printf("successes           : %llu\n",
              static_cast<unsigned long long>(result.successes));
  std::printf("FIR upper bound 95%% : %.6g\n", result.fir_upper_bound(0.95));
  std::printf("FIR upper bound 99%% : %.6g\n", result.fir_upper_bound(0.99));
  report::TextTable table({"Recovery class", "Count", "Mean (s)", "Max (s)"});
  const auto add_summary = [&](const char* label,
                               const stats::Summary& summary) {
    if (summary.count() == 0) return;
    table.add_row({label, std::to_string(summary.count()),
                   report::format_fixed(summary.mean() * 3600.0, 1),
                   report::format_fixed(summary.max() * 3600.0, 1)});
  };
  add_summary("HADB restart", result.hadb_restart_times);
  add_summary("HADB rebuild", result.hadb_rebuild_times);
  add_summary("AS restart", result.as_restart_times);
  add_summary("idle workload", result.recovery_by_workload[0]);
  add_summary("moderate workload", result.recovery_by_workload[1]);
  add_summary("full workload", result.recovery_by_workload[2]);
  std::cout << table.to_string();
  if (!result.failures.empty()) {
    std::printf("\ndropped trials (%zu of %zu; recorded and skipped):\n",
                result.failures.size(), result.requested);
    for (const faultinj::TrialFailure& failure : result.failures) {
      std::printf("  trial %zu: %s\n", failure.trial, failure.error.c_str());
    }
  }
  if (checkpoint) {
    std::cerr << "checkpoint written to '" << checkpoint->path() << "' ("
              << checkpoint->size() << "/" << checkpoint->total()
              << " indices)\n";
  }
  if (result.interrupted) return interrupted_exit_code();
  return kExitOk;
}

// `batch FILE` and `serve` (stdin) share one runner.  The result
// stream (stdout or --out FILE) carries nothing but the JSONL
// records: the summary, cache statistics, and partial-result marker
// all go to stderr, so the sink is byte-comparable across thread
// counts, cache temperature, and kill/resume.
int run_serve_cmd(const Arguments& args) {
  std::vector<std::string> lines;
  if (args.command == "serve") {
    lines = serve::read_request_lines(std::cin);
  } else {
    std::ifstream in(args.model_path);
    if (!in) {
      std::cerr << "error: cannot open request file '" << args.model_path
                << "'\n";
      return kExitModelError;
    }
    lines = serve::read_request_lines(in);
  }

  serve::BatchOptions options;
  options.threads = args.threads;
  options.cache_capacity = args.cache_entries;
  options.control.cancel = &g_cancel;
  options.supervision.retry.max_attempts = args.max_attempts;
  options.supervision.retry.base_iterations = args.max_iter_budget;
  options.supervision.admission_states = args.admission_states;
  options.supervision.admission_nnz = args.admission_nnz;
  options.supervision.queue_cap = args.queue_cap;

  std::optional<resil::Checkpointer> checkpoint;
  const int checkpoint_error = open_checkpoint(
      args, "serve",
      serve::batch_checkpoint_digest(lines, options.supervision),
      lines.size(), checkpoint);
  if (checkpoint_error != kExitOk) return checkpoint_error;
  if (checkpoint) {
    // A full checkpoint volume must not kill a serving run: failures
    // are counted and warned about below, and the next flush retries.
    checkpoint->set_write_failure_policy(
        resil::Checkpointer::WriteFailurePolicy::kTolerate);
    options.control.checkpoint = &*checkpoint;
  }

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!args.out_path.empty()) {
    out_file.open(args.out_path, std::ios::trunc);
    if (!out_file) {
      std::cerr << "error: cannot write '" << args.out_path << "'\n";
      return kExitModelError;
    }
    out = &out_file;
  }

  const serve::BatchResult result = serve::run_batch(lines, *out, options);

  if (result.interrupted) {
    std::cerr << "*** PARTIAL RESULTS: interrupted ("
              << result.interrupt_reason << ") after "
              << result.succeeded + result.failed + result.shed << "/"
              << result.requests << " requests ***\n";
  }
  std::cerr << "serve: " << result.succeeded << " ok, " << result.failed
            << " failed, " << result.shed << " shed of " << result.requests
            << " requests";
  if (result.restored > 0) {
    std::cerr << " (" << result.restored << " restored from checkpoint)";
  }
  std::cerr << "\n";
  if (result.gaps > 0) {
    std::cerr << "error: " << result.gaps
              << " gap record(s) filled at sink close — worker(s) died "
                 "without reporting\n";
  }
  if (result.lost > 0) {
    std::cerr << "error: " << result.lost
              << " request(s) never completed (worker abandoned)\n";
  }
  if (result.sink_write_failures > 0) {
    std::cerr << "error: " << result.sink_write_failures
              << " record(s) could not be written to the output stream\n";
  }
  const ctmc::SharedSolveCache::Stats& cache = result.cache;
  std::cerr << "solve cache: " << cache.hits << " shared hits, "
            << result.worker_hits << " worker hits, " << cache.misses
            << " misses, " << cache.evictions << " evictions, "
            << cache.occupancy << "/" << cache.capacity << " slots, "
            << "hit rate " << static_cast<int>(result.hit_rate() * 100.0)
            << "%\n";
  if (checkpoint) {
    if (checkpoint->write_failures() > 0) {
      std::cerr << "warning: " << checkpoint->write_failures()
                << " checkpoint flush(es) failed (tolerated; entries are "
                   "retried on the next flush)\n";
    }
    std::cerr << "checkpoint written to '" << checkpoint->path() << "' ("
              << checkpoint->size() << "/" << checkpoint->total()
              << " indices)\n";
  }
  if (result.interrupted) return interrupted_exit_code();
  if (result.lossy()) return kExitModelError;
  if (result.failed > 0 || result.shed > 0) return kExitModelError;
  return kExitOk;
}

int run_dot(const Arguments& args) {
  const io::ModelFile file = io::load_model(args.model_path);
  io::DotOptions options;
  if (!file.name.empty()) options.graph_name = file.name;
  io::write_dot(std::cout, file.bind(args.overrides), options);
  return 0;
}

int dispatch(const Arguments& args) {
  if (args.command == "solve") return run_solve(args);
  if (args.command == "lint") return run_lint(args);
  if (args.command == "states") return run_states(args);
  if (args.command == "sweep") return run_sweep(args);
  if (args.command == "mttf") return run_mttf(args);
  if (args.command == "lump") return run_lump(args);
  if (args.command == "dot") return run_dot(args);
  if (args.command == "sens") return run_sens(args);
  if (args.command == "golden") return run_golden(args);
  if (args.command == "uncertainty") return run_uncertainty(args);
  if (args.command == "campaign") return run_campaign_cmd(args);
  if (args.command == "batch" || args.command == "serve") {
    return run_serve_cmd(args);
  }
  return usage();
}

// Writes the trace file and/or the stderr summary once the command is
// done.  Runs even when the command threw, so a failed solve still
// leaves its telemetry behind for diagnosis.
void finalize_telemetry(const Arguments& args, obs::TraceSession& session) {
  const obs::Snapshot snapshot = session.stop();
  if (!args.trace_path.empty()) {
    try {
      obs::write_chrome_trace(args.trace_path, snapshot);
      std::cerr << "trace written to " << args.trace_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
    }
  }
  if (args.stats) std::cerr << obs::render_summary(snapshot);
}

}  // namespace

int main(int argc, char** argv) {
  Arguments args;
  if (!parse_arguments(argc, argv, args)) return usage();
  // Long-running commands drain cooperatively on SIGINT/SIGTERM: the
  // handler latches g_cancel, workers finish their current index, the
  // final checkpoint is flushed, and partial results are printed.  For
  // the quick interactive commands default signal disposition (kill) is
  // the right behaviour, so handlers are not installed there.
  if (args.command == "uncertainty" || args.command == "campaign" ||
      args.command == "batch" || args.command == "serve") {
    resil::install_signal_handlers(g_cancel);
  }
  if (args.deadline_seconds > 0.0) {
    g_cancel.set_deadline_after(args.deadline_seconds);
  }
  // Telemetry is opt-in: without these flags collection stays disabled
  // and the instrumentation in the libraries reduces to one relaxed
  // atomic load per site.  Event recording (per-span trace entries) is
  // only needed when a trace file was requested.
  std::optional<obs::TraceSession> session;
  if (!args.trace_path.empty() || args.stats) {
    obs::TraceSessionOptions options;
    options.collect_events = !args.trace_path.empty();
    session.emplace(options);
  }
  int code = kExitOk;
  try {
    code = dispatch(args);
  } catch (const resil::CancelledError& e) {
    // A solve or simulation aborted mid-flight (deadline or signal on a
    // command without index-granular draining).
    std::cerr << "cancelled: " << e.what() << "\n";
    code = interrupted_exit_code();
  } catch (const ctmc::NonConvergenceError& e) {
    std::cerr << "error: " << e.what() << "\n";
    code = kExitNonConvergence;
  } catch (const resil::CheckpointError& e) {
    std::cerr << "error: " << e.what() << "\n";
    code = kExitModelError;
  } catch (const io::ModelFileError& e) {
    std::cerr << "error: " << e.what() << "\n";
    code = kExitModelError;
  } catch (const lint::LintError& e) {  // derives from std::domain_error
    std::cerr << "error: " << e.what() << "\n";
    code = kExitModelError;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    code = kExitModelError;
  } catch (const std::domain_error& e) {
    std::cerr << "error: " << e.what() << "\n";
    code = kExitModelError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    code = kExitInternal;
  }
  if (session) finalize_telemetry(args, *session);
  return code;
}

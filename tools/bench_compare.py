#!/usr/bin/env python3
"""Record and compare BENCH_*.json benchmark trajectories.

Two file shapes are understood:

* google-benchmark JSON (``--benchmark_format=json`` output) — a
  ``benchmarks`` array with per-benchmark ``real_time`` in ``ns``;
* trajectory files (committed as ``BENCH_solvers.json`` /
  ``BENCH_spmv.json``) — ``{"benchmark": ..., "unit": "ns",
  "entries": [{"label", "recorded", "results": {name: real_time}}]}``
  where each entry is one recorded run, oldest first.

Subcommands:

* ``record``  — extract a google-benchmark JSON run into a trajectory
  entry and append it (creating the trajectory file if needed).
* ``compare`` — diff two runs (any mix of shapes; a trajectory
  contributes its latest entry, or the last two entries when it is
  the only file given).  Regressions beyond the noise threshold exit
  non-zero, which is the CI gate for bench_solvers / bench_spmv.

Examples::

  bench_compare.py record --json run.json --trajectory BENCH_spmv.json \
      --label "PR 6" --benchmark bench_spmv
  bench_compare.py compare BENCH_solvers.json run.json --threshold 0.25
  bench_compare.py compare BENCH_spmv.json          # last two entries
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_results(path: Path, entry_index: int = -1) -> dict[str, float]:
    """Returns {benchmark name: real_time ns} from either file shape."""
    data = json.loads(path.read_text())
    if "benchmarks" in data:  # google-benchmark output
        # Prefer the _median aggregate when the run used
        # --benchmark_repetitions: the median shrugs off the load
        # spikes of a shared host that poison single-shot wall times.
        medians = {
            b["run_name"]: float(b["real_time"])
            for b in data["benchmarks"]
            if b.get("run_type") == "aggregate"
            and b.get("aggregate_name") == "median"
            and "run_name" in b
        }
        singles = {
            b["name"]: float(b["real_time"])
            for b in data["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"
        }
        return {**singles, **medians} if medians else singles
    if "entries" in data:  # committed trajectory
        entries = data["entries"]
        if not entries:
            raise SystemExit(f"{path}: trajectory has no entries")
        return {k: float(v) for k, v in entries[entry_index]["results"].items()}
    raise SystemExit(f"{path}: neither google-benchmark nor trajectory JSON")


def record(args: argparse.Namespace) -> int:
    results = load_results(Path(args.json))
    trajectory_path = Path(args.trajectory)
    if trajectory_path.exists():
        trajectory = json.loads(trajectory_path.read_text())
    else:
        trajectory = {
            "benchmark": args.benchmark or trajectory_path.stem,
            "unit": "ns",
            "entries": [],
        }
    entry = {"label": args.label, "results": results}
    if args.note:
        entry["note"] = args.note
    trajectory["entries"].append(entry)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"recorded {len(results)} benchmarks into {trajectory_path} "
          f"as entry {len(trajectory['entries']) - 1} ({args.label})")
    return 0


def compare(args: argparse.Namespace) -> int:
    if args.new is None:
        # Single trajectory file: compare its last two entries.
        old = load_results(Path(args.old), entry_index=-2)
        new = load_results(Path(args.old), entry_index=-1)
        old_name, new_name = f"{args.old}[-2]", f"{args.old}[-1]"
    else:
        old = load_results(Path(args.old))
        new = load_results(Path(args.new))
        old_name, new_name = args.old, args.new

    shared = sorted(set(old) & set(new))
    if not shared:
        raise SystemExit("no common benchmarks between the two runs")
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    print(f"comparing {old_name} -> {new_name} "
          f"(noise threshold {args.threshold:.0%})")
    print(f"{'benchmark':<42} {'old ns':>12} {'new ns':>12} {'delta':>8}")
    regressions = []
    for name in shared:
        delta = (new[name] - old[name]) / old[name] if old[name] else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            marker = "  (improved)"
        print(f"{name:<42} {old[name]:>12.1f} {new[name]:>12.1f} "
              f"{delta:>+7.1%}{marker}")
    for name in only_old:
        print(f"{name:<42} {'(removed)':>12}")
    for name in only_new:
        print(f"{name:<42} {'(new)':>25} {new[name]:>12.1f}")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%} (worst: {worst[0]} {worst[1]:+.1%})")
        return 1
    print(f"\nOK: no regression beyond {args.threshold:.0%} "
          f"across {len(shared)} shared benchmarks")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="append a run to a trajectory file")
    rec.add_argument("--json", required=True,
                     help="google-benchmark JSON output to record")
    rec.add_argument("--trajectory", required=True,
                     help="trajectory file to append to (created if missing)")
    rec.add_argument("--label", required=True,
                     help="entry label, e.g. a PR number or commit")
    rec.add_argument("--benchmark", default=None,
                     help="benchmark name for a newly created trajectory")
    rec.add_argument("--note", default=None, help="free-form entry note")
    rec.set_defaults(func=record)

    cmp_ = sub.add_parser("compare", help="diff two runs with a threshold")
    cmp_.add_argument("old", help="baseline file (trajectory or gbench JSON)")
    cmp_.add_argument("new", nargs="?", default=None,
                      help="candidate file; omitted = last two entries of OLD")
    cmp_.add_argument("--threshold", type=float, default=0.25,
                      help="relative wall-time noise threshold "
                           "(default 0.25 = 25%%)")
    cmp_.set_defaults(func=compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env bash
# Chaos conformance matrix (docs/resilience.md).
#
# Sweeps every chaos fault site against every long-running entry point
# and asserts the engine-wide contract: an injected fault must end as
#
#   * bit-identical recovery (retried transients, tolerated checkpoint
#     writes, dropped cache publishes leave the output byte-equal to
#     the fault-free run), or
#   * an annotated degradation (a "fallback"-tagged record, a
#     "dropped samples/trials" section) at exit 0, or
#   * a structured, classified error/shed/gap record with exit 3, or
#   * a clean partial-results drain (exit 4 deadline, exit 143 signal)
#
# — never silent corruption, never a lost record, never a crash.
#
# Usage: chaos_matrix.sh CLI MODEL [OUT_TSV]
#   CLI      path to the rascal_cli binary
#   MODEL    a small .rasc model (examples/models/hadb_pair.rasc)
#   OUT_TSV  verdict table destination (default: stdout)
#
# Environment: RASCAL_THREADS is honored (CI runs the matrix at 1 and
# at 4); every other knob is pinned so the sweep is reproducible.
set -u

cli=${1:?usage: chaos_matrix.sh CLI MODEL [OUT_TSV]}
model=${2:?usage: chaos_matrix.sh CLI MODEL [OUT_TSV]}
out_tsv=${3:-/dev/stdout}

d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT

SITES="worker-throw sigterm solver-nonconverge solver-fault \
sink-write-fail checkpoint-write-fail cache-publish-fail worker-abandon"
ENTRIES="batch serve uncertainty campaign"
N_REQUESTS=8

# Request stream for batch/serve: gmres so the iterative chaos sites
# have a solver to bite, a few distinct parameter points so the solve
# cache participates.
: > "$d/req.jsonl"
for i in $(seq 1 $N_REQUESTS); do
  printf '{"model": "%s", "set": {"FIR": 0.000%d}, "method": "gmres", "id": "r%d"}\n' \
    "$model" "$((i % 4 + 1))" "$i" >> "$d/req.jsonl"
done

ck_serial=0

# run_entry ENTRY OUT ERR [CHAOS_SPEC] -> exit status
run_entry() {
  local entry=$1 out=$2 err=$3 spec=${4:-} status=0
  ck_serial=$((ck_serial + 1))
  local ck="$d/ck_${ck_serial}.json"
  case $entry in
    batch)
      env ${spec:+RASCAL_CHAOS="$spec"} RASCAL_CHECKPOINT_EVERY=1 \
        "$cli" batch "$d/req.jsonl" --out "$out" --checkpoint "$ck" \
        >/dev/null 2>"$err" || status=$?
      ;;
    serve)
      env ${spec:+RASCAL_CHAOS="$spec"} RASCAL_CHECKPOINT_EVERY=1 \
        "$cli" serve --out "$out" --checkpoint "$ck" \
        < "$d/req.jsonl" >/dev/null 2>"$err" || status=$?
      ;;
    uncertainty)
      env ${spec:+RASCAL_CHAOS="$spec"} RASCAL_CHECKPOINT_EVERY=1 \
        "$cli" uncertainty "$model" --range FIR=0:0.002 --samples 16 \
        --seed 3 --method power --checkpoint "$ck" \
        >"$out" 2>"$err" || status=$?
      ;;
    campaign)
      env ${spec:+RASCAL_CHAOS="$spec"} RASCAL_CHECKPOINT_EVERY=1 \
        "$cli" campaign --trials 64 --seed 7 --checkpoint "$ck" \
        >"$out" 2>"$err" || status=$?
      ;;
  esac
  return $status
}

# Mid-run worker index for the index-keyed sites, per entry point.
site_key() {
  local entry=$1 site=$2
  case $site in
    sigterm|worker-throw|worker-abandon)
      case $entry in
        batch|serve) echo 4 ;;
        uncertainty) echo 8 ;;
        campaign)    echo 20 ;;
      esac
      ;;
    *) echo 0 ;;
  esac
}

printf 'entry\tsite\texit\tverdict\tevidence\n' > "$out_tsv"
failures=0

for entry in $ENTRIES; do
  base_out="$d/${entry}_base.out"
  base_err="$d/${entry}_base.err"
  base_status=0
  run_entry "$entry" "$base_out" "$base_err" || base_status=$?
  if [ "$base_status" -ne 0 ]; then
    printf '%s\t(baseline)\t%d\tFAIL\tbaseline run failed\n' \
      "$entry" "$base_status" >> "$out_tsv"
    failures=$((failures + 1))
    continue
  fi

  for site in $SITES; do
    key=$(site_key "$entry" "$site")
    c_out="$d/${entry}_${site}.out"
    c_err="$d/${entry}_${site}.err"
    status=0
    run_entry "$entry" "$c_out" "$c_err" "${site}@${key}" || status=$?

    verdict=FAIL
    evidence="exit $status, no recognized outcome"
    case $status in
      0)
        if cmp -s "$base_out" "$c_out"; then
          verdict=PASS
          evidence="bit-identical recovery"
        elif grep -qE '"fallback":' "$c_out"; then
          verdict=PASS
          evidence="annotated fallback record"
        elif grep -qE 'dropped (samples|trials)' "$c_out"; then
          verdict=PASS
          evidence="structured drop section"
        fi
        ;;
      3)
        if grep -qE '"status":"(error|shed)"' "$c_out" 2>/dev/null \
            || grep -qE 'gap record|never completed|could not be written' \
               "$c_err" 2>/dev/null; then
          verdict=PASS
          evidence="classified error/shed/gap records"
        fi
        ;;
      4)
        if grep -qE 'PARTIAL RESULTS|did not converge' "$c_out" "$c_err" \
            2>/dev/null; then
          verdict=PASS
          evidence="cooperative drain (deadline/nonconvergence)"
        fi
        ;;
      143)
        if grep -q 'PARTIAL RESULTS' "$c_out" "$c_err" 2>/dev/null; then
          verdict=PASS
          evidence="signal drain with partial-results marker"
        fi
        ;;
    esac

    # Exit-0 batch/serve runs must account for every request: a short
    # stream at a success exit code is exactly the silent loss the
    # matrix exists to catch.
    if [ "$verdict" = PASS ] && [ "$status" -eq 0 ]; then
      case $entry in
        batch|serve)
          lines=$(wc -l < "$c_out")
          if [ "$lines" -ne "$N_REQUESTS" ]; then
            verdict=FAIL
            evidence="exit 0 but $lines/$N_REQUESTS records"
          fi
          ;;
      esac
    fi

    [ "$verdict" = FAIL ] && failures=$((failures + 1))
    printf '%s\t%s\t%d\t%s\t%s\n' \
      "$entry" "$site" "$status" "$verdict" "$evidence" >> "$out_tsv"
  done
done

if [ "$failures" -ne 0 ]; then
  echo "chaos matrix: $failures FAILING cell(s)" >&2
  [ "$out_tsv" != /dev/stdout ] && cat "$out_tsv" >&2
  exit 1
fi
echo "chaos matrix: all cells conform" >&2
